package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// fig8Grid is the weak-scalability grid of §5.3: dataset size and
// machine count double together.
func fig8Grid(o Options) []struct {
	SF float64
	J  int
} {
	return []struct {
		SF float64
		J  int
	}{
		{o.SF * 1, 16},
		{o.SF * 2, 32},
		{o.SF * 4, 64},
		{o.SF * 8, 128},
	}
}

// fig8Queries are the three §5.3 workloads.
func fig8Queries() []workload.Query {
	return []workload.Query{workload.EQ5(), workload.EQ7(), workload.BNCI()}
}

// fig8Run executes Dynamic on one grid point; outOfCore applies a
// per-joiner memory cap below the working set, forcing the spill tier.
func fig8Run(o Options, q workload.Query, sf float64, j int, outOfCore bool) core.Result {
	g := gen(o, sf, 0)
	r, s := q.Cardinalities(g)
	var cap int64
	if outOfCore {
		// Cap at half the optimal working set: all joiners overflow,
		// as in the paper's secondary-storage configuration.
		cap = int64(optimalILFTuples(j, r, s) / 2)
		if cap < 1 {
			cap = 1
		}
	}
	_, res := runGrid(q, g, core.SimConfig{
		J: j, Adaptive: true, Warmup: warmupFor(r + s),
		Cost: metrics.DefaultCostModel(cap),
	})
	return res
}

// Fig8a reproduces Fig. 8a: weak-scalability execution time for
// Dynamic, in-memory and out-of-core.
func Fig8a(o Options) []Table {
	o.fill()
	var tables []Table
	for _, ooc := range []bool{false, true} {
		mode := "in-memory"
		if ooc {
			mode = "out-of-core"
		}
		t := Table{
			ID:     "fig8a",
			Title:  fmt.Sprintf("Weak scalability, %s: execution time (work units)", mode),
			Header: []string{"Config", "EQ5", "EQ7", "BNCI"},
			Notes: []string{
				"paper: near-flat time as data and machines double together;",
				"BNCI drifts up with its growing ILF (replicated smaller side);",
				"out-of-core is an order of magnitude slower than in-memory.",
			},
		}
		for _, c := range fig8Grid(o) {
			row := []string{fmt.Sprintf("%.2fSF/%d", c.SF, c.J)}
			for _, q := range fig8Queries() {
				res := fig8Run(o, q, c.SF, c.J, ooc)
				row = append(row, spillMark(units(res.Makespan), res.Spilled))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig8b reproduces Fig. 8b: weak-scalability throughput (should double
// as the configuration doubles).
func Fig8b(o Options) []Table {
	o.fill()
	var tables []Table
	for _, ooc := range []bool{false, true} {
		mode := "in-memory"
		if ooc {
			mode = "out-of-core"
		}
		t := Table{
			ID:     "fig8b",
			Title:  fmt.Sprintf("Weak scalability, %s: throughput (tuples/work unit)", mode),
			Header: []string{"Config", "EQ5", "EQ7", "BNCI"},
			Notes:  []string{"paper: throughput ~doubles per step for EQ5/EQ7; BNCI sub-linear due to ILF growth."},
		}
		for _, c := range fig8Grid(o) {
			row := []string{fmt.Sprintf("%.2fSF/%d", c.SF, c.J)}
			for _, q := range fig8Queries() {
				res := fig8Run(o, q, c.SF, c.J, ooc)
				// Global throughput: tuples per unit of (parallel)
				// makespan across the whole cluster.
				row = append(row, fmt.Sprintf("%.1f", res.Throughput))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// fluctSim replays Fluct-Join under fluctuation factor k and returns
// the sim for series inspection.
func fluctSim(o Options, k int64, j int) (*core.Sim, core.Result) {
	q := workload.FluctJoin()
	g := gen(o, o.SF, 0)
	r, s := q.Cardinalities(g)
	total := r + s
	sim := core.NewSim(core.SimConfig{
		J: j, Adaptive: true,
		Warmup:      warmupFor(total), // <1% of input, as in §5.4
		MatchWidth:  q.MatchWidth,
		SizeR:       int64(q.SizeR),
		SizeS:       int64(q.SizeS),
		SampleEvery: total / 400,
	})
	workload.FluctStream(g, k, func(t join.Tuple) bool {
		sim.Process(t.Rel, t.Key)
		return true
	})
	return sim, sim.Finish()
}

// Fig8c reproduces Fig. 8c: the ILF/ILF* competitive ratio under
// fluctuation factors k = 2, 4, 6, 8, with migration counts. The
// post-warmup ratio never exceeds the proven 1.25 (Thm 4.6).
func Fig8c(o Options) []Table {
	o.fill()
	const j = 64
	t := Table{
		ID:     "fig8c",
		Title:  fmt.Sprintf("Fluct-Join ILF/ILF* competitive ratio, J=%d, SF=%.2f", j, o.SF),
		Header: []string{"k", "max ratio (post-warmup)", "mean ratio", "migrations", "final mapping"},
		Notes: []string{
			"paper: ratio never exceeds 1.25 at any time (Thm 4.6);",
			"migration windows shade the periods between ratio spikes and their correction.",
		},
	}
	for _, k := range []int64{2, 4, 6, 8} {
		sim, res := fluctSim(o, k, j)
		series := sim.Ratio.Series()
		warm := float64(warmupFor(res.R+res.S)) * 3
		worst, sum, n := 1.0, 0.0, 0
		for i := 0; i < series.Len(); i++ {
			x, y := series.At(i)
			if x < warm {
				continue
			}
			if y > worst {
				worst = y
			}
			sum += y
			n++
		}
		mean := 1.0
		if n > 0 {
			mean = sum / float64(n)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", worst),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%d", res.Migrations),
			res.Final.String(),
		})
	}
	return []Table{t}
}

// Fig8d reproduces Fig. 8d: execution-time progress under fluctuation;
// progress stays linear despite repeated migrations, demonstrating the
// amortized migration cost (Lemma 4.5).
func Fig8d(o Options) []Table {
	o.fill()
	const j = 64
	t := Table{
		ID:     "fig8d",
		Title:  fmt.Sprintf("Fluct-Join execution-time progress (work units), J=%d", j),
		Header: []string{"%input", "k=2", "k=4", "k=6", "k=8"},
		Notes:  []string{"paper: linear progress for every k; higher k costs more total work but never stalls."},
	}
	cols := [][]float64{}
	for _, k := range []int64{2, 4, 6, 8} {
		sim, res := fluctSim(o, k, j)
		total := float64(res.R + res.S)
		// Resample the work series at 10% marks.
		var ys []float64
		for pct := 1; pct <= 10; pct++ {
			target := total * float64(pct) / 10
			y := 0.0
			for i := 0; i < sim.TimeSeries.Len(); i++ {
				x, v := sim.TimeSeries.At(i)
				if x <= target {
					y = v
				}
			}
			ys = append(ys, y)
		}
		cols = append(cols, ys)
	}
	for pct := 1; pct <= 10; pct++ {
		row := []string{fmt.Sprintf("%d", pct*10)}
		for _, ys := range cols {
			row = append(row, units(ys[pct-1]))
		}
		t.Rows = append(t.Rows, row)
	}

	// Linearity check rendered as a note: max deviation of the k=8
	// curve from the straight line through its endpoints.
	dev := maxLinearDeviation(cols[3])
	t.Notes = append(t.Notes, fmt.Sprintf("k=8 max deviation from linear: %.1f%%", dev*100))
	return []Table{t}
}

// maxLinearDeviation returns the max relative deviation of a monotone
// series from the straight line through its endpoints.
func maxLinearDeviation(ys []float64) float64 {
	if len(ys) < 2 || ys[len(ys)-1] == 0 {
		return 0
	}
	last := ys[len(ys)-1]
	worst := 0.0
	for i, y := range ys {
		ideal := last * float64(i+1) / float64(len(ys))
		d := (y - ideal) / last
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// keep matrix import used even if future edits drop direct references.
var _ = matrix.SideR
