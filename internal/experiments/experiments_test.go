package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// small returns quick options for CI-sized runs.
func small() Options { return Options{SF: 0.02, Seed: 7} }

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "*"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids, m := Registry()
	want := []string{"fig6a", "fig6b", "fig6c", "fig6d", "fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig8c", "fig8d", "table2"}
	if len(ids) != len(want) {
		t.Fatalf("registry ids %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("registry ids %v, want %v", ids, want)
		}
		if m[id] == nil {
			t.Fatalf("no runner for %s", id)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Header: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"note"}}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// Table 2's shape: SHJ degrades sharply with skew while Dynamic stays
// flat; StaticMid is consistently slower than Dynamic.
func TestTable2Shape(t *testing.T) {
	tabs := Table2(small())
	if len(tabs) != 1 {
		t.Fatalf("tables %d", len(tabs))
	}
	rows := tabs[0].Rows
	if len(rows) != 10 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, q := range []string{"EQ5", "EQ7"} {
		var z0SHJ, z4SHJ, z0Dyn, z4Dyn, z4Mid float64
		var z4SHJspill bool
		for _, r := range rows {
			if r[0] != q {
				continue
			}
			switch r[1] {
			case "Z0":
				z0SHJ = parseCell(t, r[2])
				z0Dyn = parseCell(t, r[3])
			case "Z4":
				z4SHJ = parseCell(t, r[2])
				z4Dyn = parseCell(t, r[3])
				z4Mid = parseCell(t, r[4])
				z4SHJspill = strings.HasSuffix(r[2], "*")
			}
		}
		if z4SHJ < 5*z0SHJ {
			t.Errorf("%s: SHJ not hurt by skew: Z0=%v Z4=%v", q, z0SHJ, z4SHJ)
		}
		if !z4SHJspill {
			t.Errorf("%s: SHJ at Z4 did not spill", q)
		}
		if z4Dyn > 2.5*z0Dyn {
			t.Errorf("%s: Dynamic not skew-resilient: Z0=%v Z4=%v", q, z0Dyn, z4Dyn)
		}
		if z4Mid <= z4Dyn {
			t.Errorf("%s: StaticMid %v not worse than Dynamic %v", q, z4Mid, z4Dyn)
		}
		if z4SHJ < 3*z4Dyn {
			t.Errorf("%s: SHJ at Z4 (%v) should be far above Dynamic (%v)", q, z4SHJ, z4Dyn)
		}
	}
}

// Fig. 6a's shape: Dynamic's ILF growth is far below StaticMid's and
// close to StaticOpt's by the end of the stream.
func TestFig6aShape(t *testing.T) {
	tabs := Fig6a(small())
	rows := tabs[0].Rows
	final := rows[len(rows)-1]
	shj := parseCell(t, final[1])
	mid := parseCell(t, final[2])
	dyn := parseCell(t, final[3])
	opt := parseCell(t, final[4])
	if dyn >= mid {
		t.Errorf("Dynamic ILF %v not below StaticMid %v", dyn, mid)
	}
	if dyn > 1.6*opt {
		t.Errorf("Dynamic ILF %v not close to StaticOpt %v", dyn, opt)
	}
	if shj <= mid {
		t.Errorf("SHJ max ILF %v should exceed StaticMid %v on Z4 data", shj, mid)
	}
	// Monotone growth along the stream.
	for col := 1; col <= 4; col++ {
		last := -1.0
		for _, r := range rows {
			v := parseCell(t, r[col])
			if v < last-1e-9 {
				t.Fatalf("column %d not monotone", col)
			}
			last = v
		}
	}
}

func TestFig6bShape(t *testing.T) {
	tabs := Fig6b(small())
	if len(tabs) != 2 {
		t.Fatalf("tables %d", len(tabs))
	}
	for _, r := range tabs[0].Rows {
		mid := parseCell(t, r[2])
		dyn := parseCell(t, r[3])
		opt := parseCell(t, r[4])
		if dyn > mid+1e-9 {
			t.Errorf("%s: Dynamic ILF %v above StaticMid %v", r[0], dyn, mid)
		}
		if dyn > 2*opt+1 {
			t.Errorf("%s: Dynamic ILF %v far from StaticOpt %v", r[0], dyn, opt)
		}
	}
}

func TestFig6cdShape(t *testing.T) {
	rows := Fig6c(small())[0].Rows
	final := rows[len(rows)-1]
	mid := parseCell(t, final[1])
	dyn := parseCell(t, final[2])
	if dyn >= mid {
		t.Errorf("Dynamic time %v not below StaticMid %v", dyn, mid)
	}
	for _, r := range Fig6d(small())[0].Rows {
		mid := parseCell(t, r[1])
		dyn := parseCell(t, r[2])
		opt := parseCell(t, r[3])
		if dyn > mid+1e-9 {
			t.Errorf("%s: Dynamic %v slower than StaticMid %v", r[0], dyn, mid)
		}
		if opt > dyn+1e-9 {
			t.Errorf("%s: StaticOpt %v slower than Dynamic %v", r[0], opt, dyn)
		}
	}
}

func TestFig7aShape(t *testing.T) {
	for _, r := range Fig7a(small())[0].Rows {
		mid := parseCell(t, r[2])
		dyn := parseCell(t, r[3])
		if dyn < mid {
			t.Errorf("%s: Dynamic throughput %v below StaticMid %v", r[0], dyn, mid)
		}
		if r[1] != "-" && (r[0] == "EQ5" || r[0] == "EQ7") {
			shj := parseCell(t, r[1])
			if shj > dyn {
				t.Errorf("%s: SHJ throughput %v above Dynamic %v on skewed data", r[0], shj, dyn)
			}
		}
	}
}

func TestFig7cdShape(t *testing.T) {
	rows := Fig7c(small())[0].Rows
	if rows[0][0] != "(1,64)" || rows[len(rows)-1][0] != "(8,8)" {
		t.Fatalf("sweep order: %v", rows)
	}
	gapFirst := parseCell(t, rows[0][1]) - parseCell(t, rows[0][2])
	gapLast := parseCell(t, rows[len(rows)-1][1]) - parseCell(t, rows[len(rows)-1][2])
	if gapFirst <= gapLast {
		t.Errorf("ILF gap did not close: first %v last %v", gapFirst, gapLast)
	}
	for _, r := range Fig7d(small())[0].Rows {
		mid := parseCell(t, r[1])
		dyn := parseCell(t, r[2])
		if dyn+1e-9 < mid*0.95 {
			t.Errorf("%s: Dynamic throughput %v below StaticMid %v", r[0], dyn, mid)
		}
	}
}

func TestFig8abShape(t *testing.T) {
	tabs := Fig8a(small())
	if len(tabs) != 2 {
		t.Fatalf("tables %d", len(tabs))
	}
	inMem, outCore := tabs[0], tabs[1]
	for i := range inMem.Rows {
		for c := 1; c <= 3; c++ {
			im := parseCell(t, inMem.Rows[i][c])
			oc := parseCell(t, outCore.Rows[i][c])
			if oc < 3*im {
				t.Errorf("row %d col %d: out-of-core %v not far above in-memory %v", i, c, oc, im)
			}
			if !strings.HasSuffix(outCore.Rows[i][c], "*") {
				t.Errorf("out-of-core cell missing spill mark: %q", outCore.Rows[i][c])
			}
		}
	}
	// Weak scalability: time per step should not blow up (allow the
	// BNCI ILF drift the paper itself reports).
	for c := 1; c <= 2; c++ { // EQ5, EQ7
		first := parseCell(t, inMem.Rows[0][c])
		last := parseCell(t, inMem.Rows[len(inMem.Rows)-1][c])
		if last > 1.6*first {
			t.Errorf("col %d: weak scalability broken: %v -> %v", c, first, last)
		}
	}
	// Throughput roughly doubles per step for EQ5.
	tb := Fig8b(small())[0]
	t0 := parseCell(t, tb.Rows[0][1])
	t3 := parseCell(t, tb.Rows[3][1])
	if t3 < 4*t0 {
		t.Errorf("EQ5 throughput scaling %v -> %v below ~8x", t0, t3)
	}
}

func TestFig8cShape(t *testing.T) {
	rows := Fig8c(small())[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		max := parseCell(t, r[1])
		if max > 1.25+1e-6 {
			t.Errorf("k=%s: ratio %v exceeds 1.25", r[0], max)
		}
	}
	// Larger k must force at least as many migrations as k=2.
	m2 := parseCell(t, rows[0][3])
	m8 := parseCell(t, rows[3][3])
	if m8 < m2 {
		t.Errorf("migrations k=8 (%v) below k=2 (%v)", m8, m2)
	}
}

func TestFig8dShape(t *testing.T) {
	tb := Fig8d(small())[0]
	if len(tb.Rows) != 10 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	// Progress must be monotone and near-linear for every k.
	for c := 1; c <= 4; c++ {
		var ys []float64
		for _, r := range tb.Rows {
			ys = append(ys, parseCell(t, r[c]))
		}
		for i := 1; i < len(ys); i++ {
			if ys[i] < ys[i-1] {
				t.Fatalf("col %d not monotone", c)
			}
		}
		// Blocking-sim migrations appear as steps and the mapping's
		// replication factor differs between the fluctuation phase and
		// the single-relation tail, so allow moderate deviation; the
		// paper-level claim is "no superlinear blowup".
		if dev := maxLinearDeviation(ys); dev > 0.35 {
			t.Errorf("col %d deviates %.1f%% from linear", c, dev*100)
		}
	}
}

func TestSHJLiveProbe(t *testing.T) {
	if tp := shjThroughputProbe(small()); tp <= 0 {
		t.Fatalf("live SHJ throughput %v", tp)
	}
}
