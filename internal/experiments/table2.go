package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Table2 reproduces Table 2 (skew resilience): runtime of EQ5 and EQ7
// under Zipf skew Z0..Z4 on J=16 machines for SHJ, Dynamic and
// StaticMid, with [*] marking overflow to disk. The paper's shape:
// SHJ wins slightly on uniform data (no replication), collapses by two
// orders of magnitude once skew concentrates its hash partitions;
// Dynamic is flat across all skews; StaticMid pays a constant
// replication factor and spills where its square-mapping ILF exceeds
// memory.
func Table2(o Options) []Table {
	o.fill()
	const j = 16
	queries := []workload.Query{workload.EQ5(), workload.EQ7()}
	skews := []string{"Z0", "Z1", "Z2", "Z3", "Z4"}

	t := Table{
		ID:     "table2",
		Title:  fmt.Sprintf("Runtime (work units), J=%d, SF=%.2f; [*] = overflow to disk", j, o.SF),
		Header: []string{"Query", "Zipf", "SHJ", "Dynamic", "StaticMid"},
		Notes: []string{
			"paper: SHJ best at Z0..Z1, 30-70x worse at Z3..Z4 (spills);",
			"Dynamic flat across skews; StaticMid 3-10x Dynamic, spilling under its inflated ILF.",
		},
	}

	for _, q := range queries {
		// Memory budget: generous for the optimal mapping, tight for
		// the square one — the Table 2 regime (16 machines, 2GB heap).
		g0 := gen(o, o.SF, 0)
		r, s := q.Cardinalities(g0)
		optILF := optimalILFTuples(j, r, s)
		memCap := int64(2.0 * optILF)
		cost := metrics.DefaultCostModel(memCap)

		for _, zn := range skews {
			g := gen(o, o.SF, zipfOf(zn))
			shj := runSHJ(q, g, j, cost)

			_, dyn := runGrid(q, g, core.SimConfig{
				J: j, Adaptive: true, Warmup: warmupFor(r + s), Cost: cost,
			})
			_, mid := runGrid(q, g, core.SimConfig{J: j, Cost: cost})

			t.Rows = append(t.Rows, []string{
				q.Name, zn,
				spillMark(units(shj.Makespan), shj.Spilled),
				spillMark(units(dyn.Makespan), dyn.Spilled),
				spillMark(units(mid.Makespan), mid.Spilled),
			})
		}
	}
	return []Table{t}
}

func zipfOf(name string) float64 {
	switch name {
	case "Z0":
		return 0
	case "Z1":
		return 0.25
	case "Z2":
		return 0.5
	case "Z3":
		return 0.75
	default:
		return 1.0
	}
}

// optimalILFTuples is the omniscient per-joiner input under the
// optimal mapping.
func optimalILFTuples(j int, r, s int64) float64 {
	return optimalMapping(j, r, s).ILF(float64(r), float64(s))
}
