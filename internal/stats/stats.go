// Package stats implements the decentralized statistics monitoring of
// §4.1 (Algorithm 1). Incoming tuples are routed to reshufflers
// uniformly at random, so each reshuffler sees an unbiased 1/J sample
// of the global input; scaling its local counts by J yields global
// cardinality estimates with no inter-node communication. The package
// also provides the confidence machinery the paper alludes to
// ("reinforced with statistical estimation theory tools") and a small
// frequency-histogram extension mentioned as a natural generalization.
package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Estimator maintains global cardinality estimates for the two join
// inputs from one reshuffler's local sample (Algorithm 1). It is owned
// by a single task and is not safe for concurrent use, exactly like the
// per-task state in the paper.
type Estimator struct {
	j      int   // scale factor: number of machines
	localR int64 // locally observed R tuples
	localS int64
}

// NewEstimator returns an estimator scaling local counts by j.
func NewEstimator(j int) *Estimator {
	if j <= 0 {
		panic(fmt.Sprintf("stats: non-positive machine count %d", j))
	}
	return &Estimator{j: j}
}

// ObserveR records one locally received R tuple (Alg. 1 line 3,
// "scaled increment": the global estimate grows by J).
func (e *Estimator) ObserveR() { e.localR++ }

// ObserveS records one locally received S tuple.
func (e *Estimator) ObserveS() { e.localS++ }

// ObserveN records locally received tuples in bulk: the batch form of
// ObserveR/ObserveS, one pair of adds per ingest envelope instead of
// one call per tuple.
func (e *Estimator) ObserveN(r, s int64) {
	e.localR += r
	e.localS += s
}

// R returns the global cardinality estimate for R: localR * J.
func (e *Estimator) R() int64 { return e.localR * int64(e.j) }

// S returns the global cardinality estimate for S.
func (e *Estimator) S() int64 { return e.localS * int64(e.j) }

// Local returns the raw local sample counts.
func (e *Estimator) Local() (r, s int64) { return e.localR, e.localS }

// Total returns the estimated total input cardinality |R| + |S|.
func (e *Estimator) Total() int64 { return e.R() + e.S() }

// RelStdErr returns the relative standard error of the R estimate.
// A reshuffler's sample is a binomial thinning of the input with
// p = 1/J, so the estimator |R|^ = J * localR has relative standard
// error sqrt((1-p)/(p*T)) ≈ sqrt(J/T_local)/J ... simplified to
// sqrt((J-1)/ (J * localR)) for localR > 0. It shrinks as the sample
// grows, which is why the controller's view converges quickly.
func (e *Estimator) RelStdErr() float64 {
	if e.localR+e.localS == 0 {
		return math.Inf(1)
	}
	n := float64(e.localR + e.localS)
	return math.Sqrt(float64(e.j-1) / (float64(e.j) * n))
}

// ConfidenceInterval returns a (lo, hi) interval for the true R
// cardinality at roughly the given z-score (e.g. 1.96 for 95%).
func (e *Estimator) ConfidenceInterval(z float64) (lo, hi int64) {
	est := float64(e.R())
	if e.localR == 0 {
		return 0, int64(z * float64(e.j))
	}
	sd := float64(e.j) * math.Sqrt(float64(e.localR))
	lo = int64(math.Max(0, est-z*sd))
	hi = int64(est + z*sd)
	return lo, hi
}

// Snapshot is an immutable copy of the estimates, safe to pass across
// goroutines.
type Snapshot struct {
	R, S int64
}

// Snapshot returns the current estimates.
func (e *Estimator) Snapshot() Snapshot { return Snapshot{R: e.R(), S: e.S()} }

// PerJoiner returns the expected stored-tuple count per joiner and per
// side under an (n,m) grid: an R tuple is replicated to the m joiners
// of its random row, so each of the n·m joiners stores |R|·m/(n·m) =
// |R|/n of them; symmetrically each stores |S|/m S tuples. Joiners use
// the forecast as a storage Reserve hint, presizing their hash
// directories and arenas so steady ingest rarely rehashes.
func (s Snapshot) PerJoiner(n, m int) (r, sCount int64) {
	if n <= 0 || m <= 0 {
		return 0, 0
	}
	return s.R / int64(n), s.S / int64(m)
}

// Ratio returns |R|/|S| with S floored at 1 to avoid division by zero.
func (s Snapshot) Ratio() float64 {
	den := s.S
	if den == 0 {
		den = 1
	}
	return float64(s.R) / float64(den)
}

// shardCell is one writer's private counter pair, padded out to a full
// cache line so two writers' increments never contend on the same line
// (the cross-core "cache-line fight" sharding exists to avoid).
type shardCell struct {
	r, s atomic.Int64
	_    [48]byte
}

// Sharded maintains exact global cardinality counts with per-writer
// cells: each observer task owns one cell and increments it without
// synchronizing with any other writer, and Snapshot merges the cells
// into one global view. It replaces the sampled Estimator on paths
// where tuples are no longer dealt uniformly across observers (source
// lanes pin traffic to a home reshuffler, so no single task sees an
// unbiased 1/N sample any more) — the counts are exact rather than
// scaled estimates, so the decision algorithm consumes them with a
// scale factor of 1.
type Sharded struct {
	cells []shardCell
}

// NewSharded returns a counter set with n writer cells.
func NewSharded(n int) *Sharded {
	if n <= 0 {
		panic(fmt.Sprintf("stats: non-positive cell count %d", n))
	}
	return &Sharded{cells: make([]shardCell, n)}
}

// Cells returns the number of writer cells.
func (sh *Sharded) Cells() int { return len(sh.cells) }

// ObserveN records tuples observed by the writer owning cell: the bulk
// form, one pair of lane-local atomic adds per ingest run.
func (sh *Sharded) ObserveN(cell int, r, s int64) {
	c := &sh.cells[cell]
	if r != 0 {
		c.r.Add(r)
	}
	if s != 0 {
		c.s.Add(s)
	}
}

// Cell returns one writer's own counts. A writer reading its own cell
// sees an exact, race-free view of everything it observed — the basis
// for per-task decisions (like dummy padding) that must not race with
// other writers' concurrent increments.
func (sh *Sharded) Cell(cell int) Snapshot {
	c := &sh.cells[cell]
	return Snapshot{R: c.r.Load(), S: c.s.Load()}
}

// Snapshot merges every cell into the exact global counts. Concurrent
// writers may land increments mid-merge; the result is still a valid
// count that was true at some point during the call (each side is
// monotone non-decreasing).
func (sh *Sharded) Snapshot() Snapshot {
	var out Snapshot
	for i := range sh.cells {
		out.R += sh.cells[i].r.Load()
		out.S += sh.cells[i].s.Load()
	}
	return out
}

// Histogram is a scaled frequency histogram over a bounded key domain,
// the "other data statistics, e.g., frequency histograms" extension of
// §4.1. Like Estimator, counts are local samples scaled by J.
type Histogram struct {
	j       int
	buckets []int64
	lo, hi  int64
}

// NewHistogram returns a histogram with nbuckets equal-width buckets
// over [lo, hi).
func NewHistogram(j int, nbuckets int, lo, hi int64) *Histogram {
	if nbuckets <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{j: j, buckets: make([]int64, nbuckets), lo: lo, hi: hi}
}

// Observe records a locally seen key.
func (h *Histogram) Observe(key int64) {
	if key < h.lo {
		key = h.lo
	}
	if key >= h.hi {
		key = h.hi - 1
	}
	idx := int((key - h.lo) * int64(len(h.buckets)) / (h.hi - h.lo))
	h.buckets[idx]++
}

// Estimate returns the estimated global frequency of the bucket
// containing key.
func (h *Histogram) Estimate(key int64) int64 {
	if key < h.lo || key >= h.hi {
		return 0
	}
	idx := int((key - h.lo) * int64(len(h.buckets)) / (h.hi - h.lo))
	return h.buckets[idx] * int64(h.j)
}

// Skew returns a simple skew indicator: the ratio of the largest bucket
// to the mean bucket. 1 means uniform; large values mean heavy skew.
func (h *Histogram) Skew() float64 {
	var max, sum int64
	for _, b := range h.buckets {
		if b > max {
			max = b
		}
		sum += b
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(h.buckets))
	return float64(max) / mean
}

// Merge folds another histogram (same shape) into h. Used when a
// controller fails over and a peer reconstructs global state (§4.1
// fault-tolerance note).
func (h *Histogram) Merge(other *Histogram) {
	if len(other.buckets) != len(h.buckets) || other.lo != h.lo || other.hi != h.hi {
		panic("stats: merging histograms of different shapes")
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
}
