package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestEstimatorScaling(t *testing.T) {
	e := NewEstimator(16)
	for i := 0; i < 10; i++ {
		e.ObserveR()
	}
	for i := 0; i < 3; i++ {
		e.ObserveS()
	}
	if e.R() != 160 || e.S() != 48 {
		t.Fatalf("R=%d S=%d", e.R(), e.S())
	}
	if e.Total() != 208 {
		t.Fatalf("Total=%d", e.Total())
	}
	lr, ls := e.Local()
	if lr != 10 || ls != 3 {
		t.Fatalf("Local=%d,%d", lr, ls)
	}
}

func TestEstimatorPanicsOnBadJ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewEstimator(0)
}

// The scaled estimate from a random 1/J thinning must converge to the
// true cardinality.
func TestEstimatorConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const j = 16
	const trueR = 200000
	e := NewEstimator(j)
	for i := 0; i < trueR; i++ {
		if rng.Intn(j) == 0 { // tuple routed to this reshuffler
			e.ObserveR()
		}
	}
	got := float64(e.R())
	if math.Abs(got-trueR)/trueR > 0.05 {
		t.Fatalf("estimate %v too far from %v", got, trueR)
	}
	if e.RelStdErr() > 0.02 {
		t.Fatalf("rel std err %v unexpectedly large", e.RelStdErr())
	}
}

func TestRelStdErrEmptySample(t *testing.T) {
	e := NewEstimator(4)
	if !math.IsInf(e.RelStdErr(), 1) {
		t.Error("empty sample should have infinite error")
	}
}

func TestConfidenceIntervalCoversEstimate(t *testing.T) {
	e := NewEstimator(8)
	for i := 0; i < 100; i++ {
		e.ObserveR()
	}
	lo, hi := e.ConfidenceInterval(1.96)
	if lo > e.R() || hi < e.R() {
		t.Fatalf("interval [%d,%d] does not cover estimate %d", lo, hi, e.R())
	}
	if lo < 0 {
		t.Fatal("negative lower bound")
	}
}

func TestConfidenceIntervalEmpty(t *testing.T) {
	e := NewEstimator(8)
	lo, hi := e.ConfidenceInterval(1.96)
	if lo != 0 || hi <= 0 {
		t.Fatalf("empty interval [%d,%d]", lo, hi)
	}
}

func TestSnapshotRatio(t *testing.T) {
	s := Snapshot{R: 100, S: 50}
	if s.Ratio() != 2 {
		t.Fatalf("ratio %v", s.Ratio())
	}
	if (Snapshot{R: 7, S: 0}).Ratio() != 7 {
		t.Fatal("zero-S ratio should floor denominator at 1")
	}
}

// Sharded counters are exact: concurrent writers on distinct cells must
// merge to precisely the sum of their observations, not an estimate.
func TestShardedExactUnderConcurrency(t *testing.T) {
	const cells = 8
	const perCell = 5000
	sh := NewSharded(cells)
	var wg sync.WaitGroup
	for c := 0; c < cells; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perCell; i++ {
				sh.ObserveN(c, 2, 1)
			}
		}(c)
	}
	wg.Wait()
	snap := sh.Snapshot()
	if snap.R != 2*cells*perCell || snap.S != cells*perCell {
		t.Fatalf("snapshot R=%d S=%d, want %d and %d", snap.R, snap.S, 2*cells*perCell, cells*perCell)
	}
	if sh.Cells() != cells {
		t.Fatalf("Cells=%d", sh.Cells())
	}
}

func TestShardedZeroSidedObserve(t *testing.T) {
	sh := NewSharded(2)
	sh.ObserveN(0, 3, 0)
	sh.ObserveN(1, 0, 4)
	if snap := sh.Snapshot(); snap.R != 3 || snap.S != 4 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestShardedPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSharded(0)
}

func TestHistogramObserveEstimate(t *testing.T) {
	h := NewHistogram(4, 10, 0, 100)
	for i := 0; i < 5; i++ {
		h.Observe(15) // bucket 1
	}
	if got := h.Estimate(12); got != 20 {
		t.Fatalf("Estimate=%d want 20", got)
	}
	if got := h.Estimate(55); got != 0 {
		t.Fatalf("empty bucket Estimate=%d", got)
	}
	if got := h.Estimate(-5); got != 0 {
		t.Fatalf("out-of-range Estimate=%d", got)
	}
}

func TestHistogramClampsEdges(t *testing.T) {
	h := NewHistogram(1, 4, 0, 8)
	h.Observe(-100)
	h.Observe(1000)
	if h.Estimate(0) != 1 || h.Estimate(7) != 1 {
		t.Fatal("edge observations not clamped into first/last buckets")
	}
}

func TestHistogramSkew(t *testing.T) {
	uniform := NewHistogram(1, 4, 0, 4)
	for k := int64(0); k < 4; k++ {
		uniform.Observe(k)
	}
	if s := uniform.Skew(); s != 1 {
		t.Fatalf("uniform skew %v", s)
	}
	skewed := NewHistogram(1, 4, 0, 4)
	for i := 0; i < 97; i++ {
		skewed.Observe(0)
	}
	skewed.Observe(1)
	skewed.Observe(2)
	skewed.Observe(3)
	if s := skewed.Skew(); s < 3 {
		t.Fatalf("skewed skew %v too small", s)
	}
	if NewHistogram(1, 4, 0, 4).Skew() != 1 {
		t.Fatal("empty histogram skew should be 1")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(2, 4, 0, 8)
	b := NewHistogram(2, 4, 0, 8)
	a.Observe(1)
	b.Observe(1)
	b.Observe(7)
	a.Merge(b)
	if a.Estimate(1) != 4 || a.Estimate(7) != 2 {
		t.Fatalf("merged estimates %d,%d", a.Estimate(1), a.Estimate(7))
	}
}

func TestHistogramMergePanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewHistogram(1, 4, 0, 8).Merge(NewHistogram(1, 8, 0, 8))
}
