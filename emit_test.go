package squall_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	squall "repro"
)

// emitStream builds a lopsided R-then-S-flood equi-join input (the
// shape that forces adaptive migration toward a (1,J) mapping
// mid-stream) with every tuple uniquely identified through Aux.
func emitStream(nR, nS int, dom, seed int64) []squall.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]squall.Tuple, 0, nR+nS)
	for i := 0; i < nR; i++ {
		out = append(out, squall.Tuple{Rel: squall.SideR, Key: rng.Int63n(dom), Aux: int64(i) + 1, Size: 8})
	}
	for i := 0; i < nS; i++ {
		out = append(out, squall.Tuple{Rel: squall.SideS, Key: rng.Int63n(dom), Aux: int64(i) + 1<<20, Size: 8})
	}
	return out
}

// emitOracle is the nested-loop ground truth: the multiset of
// (R.Aux, S.Aux) identities of every matching pair.
func emitOracle(tuples []squall.Tuple) map[[2]int64]int {
	want := map[[2]int64]int{}
	for i := range tuples {
		if tuples[i].Rel != squall.SideR {
			continue
		}
		for j := range tuples {
			if tuples[j].Rel == squall.SideS && tuples[i].Key == tuples[j].Key {
				want[[2]int64{tuples[i].Aux, tuples[j].Aux}]++
			}
		}
	}
	return want
}

// emitShardRec accumulates one shard's output. The appends are
// deliberately unsynchronized: the Sharded contract serializes
// same-shard calls, so under -race any contract violation in the emit
// plane surfaces as a detected race, and the CAS flag catches overlap
// even in non-race runs.
type emitShardRec struct {
	inFlight atomic.Bool
	pairs    [][2]int64
	_        [64]byte
}

// The sharded emit plane must be invisible in the result multiset:
// across both engines (single-grid and grouped decomposition), inline
// and worker-backed emission, and batch sizes 1 and 32, the output
// matches the nested-loop oracle exactly — while migrations relocate
// state mid-stream, four feeders send concurrently, and the per-shard
// serialization contract is actively checked.
func TestShardedEmitExactness(t *testing.T) {
	tuples := emitStream(300, 4000, 40, 7)
	want := emitOracle(tuples)

	for _, eng := range []struct {
		name    string
		joiners int
	}{
		{"operator", 8}, // power of two: single grid
		{"grouped", 6},  // 4+2 groups: cross-group shard offsets
	} {
		for _, workers := range []int{0, 4} {
			for _, batch := range []int{1, 32} {
				eng, workers, batch := eng, workers, batch
				name := fmt.Sprintf("%s/workers=%d/batch=%d", eng.name, workers, batch)
				t.Run(name, func(t *testing.T) {
					shards := make([]*emitShardRec, 64)
					for i := range shards {
						shards[i] = &emitShardRec{}
					}
					var violations atomic.Int64
					sink := squall.Sharded(func(shard int, ps []squall.Pair) {
						sh := shards[shard]
						if !sh.inFlight.CompareAndSwap(false, true) {
							violations.Add(1)
						}
						for i := range ps {
							sh.pairs = append(sh.pairs, [2]int64{ps[i].R.Aux, ps[i].S.Aux})
						}
						sh.inFlight.Store(false)
					})

					opts := []squall.Option{
						squall.WithJoiners(eng.joiners),
						squall.WithAdaptive(),
						squall.WithWarmup(300),
						squall.WithSeed(11),
						squall.WithBatchSize(batch),
						squall.WithSourceLanes(4),
					}
					if workers > 0 {
						opts = append(opts, squall.WithEmitWorkers(workers))
					}
					e := squall.NewEngine(squall.Equi("emit"), sink, opts...)
					e.Start()

					var wg sync.WaitGroup
					const feeders = 4
					chunk := (len(tuples) + feeders - 1) / feeders
					for f := 0; f < feeders; f++ {
						lo := f * chunk
						hi := lo + chunk
						if hi > len(tuples) {
							hi = len(tuples)
						}
						wg.Add(1)
						go func(ts []squall.Tuple) {
							defer wg.Done()
							for len(ts) > 0 {
								n := 64
								if n > len(ts) {
									n = len(ts)
								}
								if err := e.SendBatch(ts[:n]); err != nil {
									t.Error(err)
									return
								}
								ts = ts[n:]
							}
						}(tuples[lo:hi])
					}
					wg.Wait()
					if err := e.Finish(); err != nil {
						t.Fatal(err)
					}

					if v := violations.Load(); v != 0 {
						t.Fatalf("%d overlapping same-shard sink calls; Sharded must serialize within a shard", v)
					}
					if m := e.Metrics().Migrations.Load(); m == 0 {
						t.Fatal("no migrations; the test must cover emission during state relocation")
					}
					got := map[[2]int64]int{}
					activeShards := 0
					for _, sh := range shards {
						if len(sh.pairs) > 0 {
							activeShards++
						}
						for _, pr := range sh.pairs {
							got[pr]++
						}
					}
					if activeShards < 2 {
						t.Fatalf("results arrived on %d shard(s); want the fanout spread across joiners", activeShards)
					}
					if len(got) != len(want) {
						t.Fatalf("got %d distinct pairs, oracle %d", len(got), len(want))
					}
					for k, n := range want {
						if got[k] != n {
							t.Fatalf("pair %v: got %d, oracle %d", k, got[k], n)
						}
					}
				})
			}
		}
	}
}

// A worker-backed emit plane feeding a chained pipeline stage must
// deliver the same triples as the inline plane: the bridge consumes
// per-shard (its buffers are shard-private) and the emit workers pin
// each shard to one worker, so chaining stays exact end to end.
func TestEmitWorkersPipelineChain(t *testing.T) {
	const (
		nR, nS, nT = 200, 1500, 400
		k1Dom      = 60
		k2Dom      = 120
	)
	rs, ss, ts := threeWayInputs(nR, nS, nT, k1Dom, k2Dom, 23)
	want := oracleThreeWay(rs, ss, ts)
	sortTriples(want)

	var mu sync.Mutex
	var got []triple
	p := squall.NewPipeline(
		squall.WithJoiners(8),
		squall.WithAdaptive(),
		squall.WithWarmup(300),
		squall.WithSeed(5),
		squall.WithEmitWorkers(2),
	)
	rsStage := p.Join(squall.Equi("r-s"))
	rstStage := rsStage.Join(squall.Equi("rs-t"), rekeyRS)
	rstStage.To(squall.Each(func(pr squall.Pair) {
		tr := triple{rid: pr.R.Aux / 1_000_000, sid: pr.R.Aux % 1_000_000, tid: pr.S.Aux}
		mu.Lock()
		got = append(got, tr)
		mu.Unlock()
	}))
	if err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if err := rsStage.Send(rs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rstStage.SendBatch(ts); err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(ss); start += 128 {
		end := start + 128
		if end > len(ss) {
			end = len(ss)
		}
		if err := rsStage.SendBatch(ss[start:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	sortTriples(got)
	if len(got) != len(want) {
		t.Fatalf("pipeline emitted %d triples, oracle %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triple %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
