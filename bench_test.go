// Benchmarks regenerating every table and figure of the paper (run
// with `go test -bench=. -benchmem`), plus micro-benchmarks of the
// core data structures and ablations of the design choices DESIGN.md
// calls out (ε tradeoff, locality-aware migration, warmup).
//
// Each Benchmark<Artifact> executes the corresponding experiment at a
// reduced scale and reports the headline quantity of that artifact via
// b.ReportMetric, so `go test -bench` output doubles as a compact
// reproduction record.
package squall_test

import (
	"context"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	squall "repro"
	"repro/internal/experiments"
	"repro/internal/join"
	"repro/internal/matrix"
	"repro/internal/storage"
)

func benchOpts() experiments.Options { return experiments.Options{SF: 0.02, Seed: 2014} }

func cell(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "*"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// BenchmarkTable2 regenerates Table 2 (skew resilience) and reports
// the Z4/Z0 runtime blow-up of SHJ versus Dynamic's.
func BenchmarkTable2(b *testing.B) {
	var shjBlowup, dynBlowup float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchOpts())[0].Rows
		var z0SHJ, z4SHJ, z0Dyn, z4Dyn float64
		for _, r := range rows {
			if r[0] != "EQ5" {
				continue
			}
			switch r[1] {
			case "Z0":
				z0SHJ, z0Dyn = cell(b, r[2]), cell(b, r[3])
			case "Z4":
				z4SHJ, z4Dyn = cell(b, r[2]), cell(b, r[3])
			}
		}
		shjBlowup = z4SHJ / z0SHJ
		dynBlowup = z4Dyn / z0Dyn
	}
	b.ReportMetric(shjBlowup, "SHJ-Z4/Z0")
	b.ReportMetric(dynBlowup, "Dyn-Z4/Z0")
}

// BenchmarkFig6a reports the final Dynamic-vs-StaticMid ILF ratio of
// the Fig. 6a growth curves.
func BenchmarkFig6a(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6a(benchOpts())[0].Rows
		final := rows[len(rows)-1]
		ratio = cell(b, final[2]) / cell(b, final[3]) // StaticMid / Dynamic
	}
	b.ReportMetric(ratio, "Mid/Dyn-ILF")
}

// BenchmarkFig6b reports the same ratio from the final-ILF bar chart.
func BenchmarkFig6b(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6b(benchOpts())[0].Rows
		ratio = cell(b, rows[0][2]) / cell(b, rows[0][3])
	}
	b.ReportMetric(ratio, "Mid/Dyn-ILF")
}

// BenchmarkFig6c reports the StaticMid/Dynamic completion-time ratio.
func BenchmarkFig6c(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6c(benchOpts())[0].Rows
		final := rows[len(rows)-1]
		ratio = cell(b, final[1]) / cell(b, final[2])
	}
	b.ReportMetric(ratio, "Mid/Dyn-time")
}

// BenchmarkFig6d reports the worst query's StaticMid/Dynamic runtime
// ratio (the paper's "up to 4x faster").
func BenchmarkFig6d(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range experiments.Fig6d(benchOpts())[0].Rows {
			if ratio := cell(b, r[1]) / cell(b, r[2]); ratio > worst {
				worst = ratio
			}
		}
	}
	b.ReportMetric(worst, "max-Mid/Dyn")
}

// BenchmarkFig7a reports Dynamic's throughput advantage over StaticMid.
func BenchmarkFig7a(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7a(benchOpts())[0].Rows
		adv = cell(b, rows[0][3]) / cell(b, rows[0][2])
	}
	b.ReportMetric(adv, "Dyn/Mid-tput")
}

// BenchmarkFig7b runs the live latency experiment and reports
// Dynamic's mean latency in milliseconds.
func BenchmarkFig7b(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7b(benchOpts())[0].Rows
		if rows[0][2] != "n/a" && rows[0][2] != "err" {
			ms = cell(b, rows[0][2])
		}
	}
	b.ReportMetric(ms, "Dyn-ms")
}

// BenchmarkFig7c reports how much of the (1,64)-point ILF gap remains
// at the (8,8) point (the gap should close).
func BenchmarkFig7c(b *testing.B) {
	var closing float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7c(benchOpts())[0].Rows
		first := cell(b, rows[0][1]) - cell(b, rows[0][2])
		last := cell(b, rows[len(rows)-1][1]) - cell(b, rows[len(rows)-1][2])
		closing = last / first
	}
	b.ReportMetric(closing, "gap-left")
}

// BenchmarkFig7d reports the throughput gap closing across the sweep.
func BenchmarkFig7d(b *testing.B) {
	var ratioAtSquare float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7d(benchOpts())[0].Rows
		last := rows[len(rows)-1]
		ratioAtSquare = cell(b, last[2]) / cell(b, last[1])
	}
	b.ReportMetric(ratioAtSquare, "Dyn/Mid-at-(8,8)")
}

// BenchmarkFig8a reports the weak-scalability time drift of EQ5
// (last/first config; ~1.0 is perfect).
func BenchmarkFig8a(b *testing.B) {
	var drift float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8a(benchOpts())[0].Rows
		drift = cell(b, rows[len(rows)-1][1]) / cell(b, rows[0][1])
	}
	b.ReportMetric(drift, "EQ5-time-drift")
}

// BenchmarkFig8b reports EQ5's throughput scaling across the 8x sweep.
func BenchmarkFig8b(b *testing.B) {
	var scaling float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8b(benchOpts())[0].Rows
		scaling = cell(b, rows[len(rows)-1][1]) / cell(b, rows[0][1])
	}
	b.ReportMetric(scaling, "EQ5-tput-x")
}

// BenchmarkFig8c reports the worst post-warmup competitive ratio
// across fluctuation factors (bound: 1.25).
func BenchmarkFig8c(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, r := range experiments.Fig8c(benchOpts())[0].Rows {
			if v := cell(b, r[1]); v > worst {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "max-ratio")
}

// BenchmarkFig8d reports the k=8 deviation from linear progress.
func BenchmarkFig8d(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		tb := experiments.Fig8d(benchOpts())[0]
		note := tb.Notes[len(tb.Notes)-1] // "k=8 max deviation from linear: X%"
		f := strings.Fields(note)
		dev = cell(b, strings.TrimSuffix(f[len(f)-1], "%"))
	}
	b.ReportMetric(dev, "k8-dev-%")
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkOperatorEquiThroughput measures the live concurrent
// operator end to end.
func BenchmarkOperatorEquiThroughput(b *testing.B) {
	var n atomic.Int64
	op := squall.NewOperator(squall.Config{
		J: 16, Pred: squall.EquiJoin("bench", nil), Adaptive: true, Warmup: 10000,
		Emit: func(squall.Pair) { n.Add(1) },
	})
	op.Start()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		side := squall.SideR
		if i%2 == 1 {
			side = squall.SideS
		}
		op.Send(squall.Tuple{Rel: side, Key: rng.Int63n(1 << 20), Size: 8})
	}
	b.StopTimer()
	if err := op.Finish(); err != nil {
		b.Fatal(err)
	}
}

// sparseStream pre-builds an interleaved R/S stream with keys sparse
// enough that ingest, not output, dominates.
func sparseStream(n int) []squall.Tuple {
	rng := rand.New(rand.NewSource(1))
	tuples := make([]squall.Tuple, n)
	for i := range tuples {
		side := squall.SideR
		if i%2 == 1 {
			side = squall.SideS
		}
		tuples[i] = squall.Tuple{Rel: side, Key: rng.Int63n(1 << 20), Size: 8}
	}
	return tuples
}

// BenchmarkOperatorIngest measures the reshuffler->joiner message
// plane end to end at different batch sizes: batch=1 is the seed's
// per-message plane, batch=32 the default batched plane; the ns/op gap
// is the amortized per-tuple synchronization cost the batching removes
// (the PR-1 trajectory point in BENCH_PR1.json). The sendbatch=N runs
// feed the same stream through SendBatch in N-tuple runs, measuring
// the batched ingest front end on top of the batched plane (the PR-3
// trajectory point in BENCH_PR3.json).
func BenchmarkOperatorIngest(b *testing.B) {
	run := func(b *testing.B, bs, chunk int) {
		// Pre-build the stream so the timed region is purely the
		// operator: Send through Finish (full pipeline drain), which
		// keeps ns/op stable regardless of backpressure phase.
		tuples := sparseStream(b.N)
		var n atomic.Int64
		op := squall.NewOperator(squall.Config{
			J: 16, Pred: squall.EquiJoin("bench", nil), BatchSize: bs, Seed: 1,
			Emit: func(squall.Pair) { n.Add(1) },
		})
		op.Start()
		b.ResetTimer()
		if chunk <= 1 {
			for i := range tuples {
				if err := op.Send(tuples[i]); err != nil {
					b.Fatal(err)
				}
			}
		} else {
			for start := 0; start < len(tuples); start += chunk {
				end := start + chunk
				if end > len(tuples) {
					end = len(tuples)
				}
				if err := op.SendBatch(tuples[start:end]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := op.Finish(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(op.Metrics().MeanBatchSize(), "msgs/batch")
	}
	for _, bs := range []int{1, 32, 64, 128} {
		bs := bs
		b.Run("batch="+strconv.Itoa(bs), func(b *testing.B) { run(b, bs, 1) })
	}
	for _, bs := range []int{32, 128} {
		bs := bs
		b.Run("sendbatch="+strconv.Itoa(bs), func(b *testing.B) { run(b, bs, bs) })
	}
}

// BenchmarkOperatorIngestFanout measures the output-dominated regime:
// keys land in a small domain, so every probe fans out into many
// matches and the emit sink, not the ingest plane, carries most of the
// volume — the workload the vectorized emit sink (EmitBatch, per-flush
// accounting) is for. Each iteration runs a fixed-size stream through
// a fresh operator (output volume grows quadratically with stream
// length, so scaling the stream with b.N would not measure a rate);
// ns/tuple and pairs/tuple are reported per metric.
func BenchmarkOperatorIngestFanout(b *testing.B) {
	const (
		nTuples = 100000
		domain  = 512
	)
	stream := func() []squall.Tuple {
		rng := rand.New(rand.NewSource(7))
		tuples := make([]squall.Tuple, nTuples)
		for i := range tuples {
			side := squall.SideR
			if i%2 == 1 {
				side = squall.SideS
			}
			tuples[i] = squall.Tuple{Rel: side, Key: rng.Int63n(domain), Size: 8}
		}
		return tuples
	}
	for _, mode := range []string{"batch=32", "sendbatch=32", "sendbatch=32+workers"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			tuples := stream()
			var pairs int64
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				var n atomic.Int64
				counters := make([]shardCounter, 16)
				cfg := squall.Config{J: 16, Pred: squall.EquiJoin("bench", nil), Seed: 1}
				switch mode {
				case "sendbatch=32":
					cfg.EmitBatch = func(ps []squall.Pair) { n.Add(int64(len(ps))) }
				case "sendbatch=32+workers":
					// The PR-7 emit plane: dedicated emit workers drain
					// pooled pair buffers into per-shard padded counters.
					cfg.EmitWorkers = runtime.GOMAXPROCS(0)
					cfg.EmitShard = func(shard int, ps []squall.Pair) {
						counters[shard].n.Add(int64(len(ps)))
					}
				default:
					cfg.Emit = func(squall.Pair) { n.Add(1) }
				}
				op := squall.NewOperator(cfg)
				op.Start()
				if mode != "batch=32" {
					for start := 0; start < len(tuples); start += 32 {
						end := start + 32
						if end > len(tuples) {
							end = len(tuples)
						}
						if err := op.SendBatch(tuples[start:end]); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					for i := range tuples {
						if err := op.Send(tuples[i]); err != nil {
							b.Fatal(err)
						}
					}
				}
				if err := op.Finish(); err != nil {
					b.Fatal(err)
				}
				pairs = n.Load()
				for i := range counters {
					pairs += counters[i].n.Load()
				}
			}
			b.StopTimer()
			perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perIter/nTuples, "ns/tuple")
			b.ReportMetric(float64(pairs)/nTuples, "pairs/tuple")
		})
	}
}

// BenchmarkPipelineChain measures the cost of multi-way chaining
// through the pipeline API against the same plan hand-wired from raw
// operators: two equi-join stages, the first stage's pairs re-keyed
// and forwarded into the second, over a fixed pre-generated stream.
// The "handwired" mode wires op1's EmitBatch into op2.SendBatch with
// an inline rekey buffer — exactly what the pipeline's bridge does —
// so the delta between the modes is the pipeline abstraction's
// overhead (acceptance: <= 10%). Each iteration runs the fixed stream
// through fresh engines; ns/tuple is reported over the externally fed
// tuples.
func BenchmarkPipelineChain(b *testing.B) {
	const (
		nStage1 = 60000 // R and S interleaved, keys in [0, 2^14)
		nStage2 = 10000 // T, keys in [0, 2^13)
		k1Dom   = 1 << 14
		k2Dom   = 1 << 13
		chunk   = 32
	)
	stage1, stage2 := chainStreams(nStage1, nStage2, k1Dom, k2Dom)
	rekey := func(pr squall.Pair) squall.Tuple {
		return squall.Tuple{Rel: squall.SideR, Key: (pr.R.Key*31 + pr.S.Key) % k2Dom, Size: 8}
	}
	feed := func(b *testing.B, send1, send2 func([]squall.Tuple) error) {
		b.Helper()
		for start := 0; start < len(stage2); start += chunk {
			if err := send2(stage2[start:min(start+chunk, len(stage2))]); err != nil {
				b.Fatal(err)
			}
		}
		for start := 0; start < len(stage1); start += chunk {
			if err := send1(stage1[start:min(start+chunk, len(stage1))]); err != nil {
				b.Fatal(err)
			}
		}
	}

	var pipelinePairs, handwiredPairs int64
	b.Run("pipeline", func(b *testing.B) {
		var pairs int64
		b.ResetTimer()
		for iter := 0; iter < b.N; iter++ {
			sink, n := squall.Counter()
			p := squall.NewPipeline(squall.WithJoiners(16), squall.WithSeed(1))
			s1 := p.Join(squall.Equi("chain-1"))
			s2 := s1.Join(squall.Equi("chain-2"), rekey).To(sink)
			if err := p.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
			feed(b, s1.SendBatch, s2.SendBatch)
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
			pairs = n.Load()
		}
		b.StopTimer()
		reportChain(b, pairs, nStage1+nStage2)
		pipelinePairs = pairs
	})
	b.Run("handwired", func(b *testing.B) {
		var pairs int64
		b.ResetTimer()
		for iter := 0; iter < b.N; iter++ {
			var n atomic.Int64
			op2 := squall.NewOperator(squall.Config{
				J: 16, Pred: squall.EquiJoin("chain-2", nil), Seed: 1,
				EmitBatch: func(ps []squall.Pair) { n.Add(int64(len(ps))) },
			})
			var mu sync.Mutex
			buf := make([]squall.Tuple, 0, squall.DefaultBatchSize)
			op1 := squall.NewOperator(squall.Config{
				J: 16, Pred: squall.EquiJoin("chain-1", nil), Seed: 1,
				EmitBatch: func(ps []squall.Pair) {
					mu.Lock()
					for i := range ps {
						buf = append(buf, rekey(ps[i]))
						if len(buf) == cap(buf) {
							if err := op2.SendBatch(buf); err != nil {
								panic(err)
							}
							buf = buf[:0]
						}
					}
					mu.Unlock()
				},
			})
			op1.Start()
			op2.Start()
			feed(b, op1.SendBatch, op2.SendBatch)
			if err := op1.Finish(); err != nil {
				b.Fatal(err)
			}
			if err := op2.SendBatch(buf); err != nil {
				b.Fatal(err)
			}
			buf = buf[:0]
			if err := op2.Finish(); err != nil {
				b.Fatal(err)
			}
			pairs = n.Load()
		}
		b.StopTimer()
		reportChain(b, pairs, nStage1+nStage2)
		handwiredPairs = pairs
	})
	if pipelinePairs != 0 && handwiredPairs != 0 && pipelinePairs != handwiredPairs {
		b.Fatalf("pipeline emitted %d pairs, handwired %d — the modes must compute the same join",
			pipelinePairs, handwiredPairs)
	}
}

// chainStreams pre-builds the fixed two-stage input: an interleaved
// R/S stream for stage 1 and a T stream for stage 2.
func chainStreams(nStage1, nStage2 int, k1Dom, k2Dom int64) (stage1, stage2 []squall.Tuple) {
	rng := rand.New(rand.NewSource(23))
	stage1 = make([]squall.Tuple, nStage1)
	for i := range stage1 {
		side := squall.SideR
		if i%2 == 1 {
			side = squall.SideS
		}
		stage1[i] = squall.Tuple{Rel: side, Key: rng.Int63n(k1Dom), Size: 8}
	}
	stage2 = make([]squall.Tuple, nStage2)
	for i := range stage2 {
		stage2[i] = squall.Tuple{Rel: squall.SideS, Key: rng.Int63n(k2Dom), Size: 8}
	}
	return stage1, stage2
}

func reportChain(b *testing.B, pairs int64, fedTuples int) {
	perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perIter/float64(fedTuples), "ns/tuple")
	b.ReportMetric(float64(pairs), "final-pairs")
}

// BenchmarkCheckpoint measures the durability plane of PR 8: each
// sub-benchmark builds a fixed amount of joiner state, then times
// repeated Operator.Checkpoint calls — the full barrier round trip
// (marker broadcast, per-joiner arena serialization, backend commit).
// ms/ckpt is the caller-visible checkpoint latency (ingest is never
// paused; this is the commit wait), MB/s the snapshot serialization
// rate, and snap-MB the committed blob size, so the three metrics
// together give pause-time and bytes/sec versus state size. The mem
// modes isolate serialization from disk; the file mode adds the
// FileBackend's write-fsync-rename commit.
func BenchmarkCheckpoint(b *testing.B) {
	run := func(b *testing.B, n int, backend squall.Backend) {
		var cnt atomic.Int64
		op := squall.NewOperator(squall.Config{
			J: 16, Pred: squall.EquiJoin("bench", nil), Seed: 1,
			Backend: backend,
			// Force every snapshot full: this benchmark measures the
			// whole-state serialization plane (BenchmarkCheckpointIncremental
			// covers the delta path).
			CheckpointCompactEvery: 1,
			EmitBatch:              func(ps []squall.Pair) { cnt.Add(int64(len(ps))) },
		})
		op.Start()
		tuples := sparseStream(n)
		for start := 0; start < len(tuples); start += 32 {
			end := start + 32
			if end > len(tuples) {
				end = len(tuples)
			}
			if err := op.SendBatch(tuples[start:end]); err != nil {
				b.Fatal(err)
			}
		}
		// One untimed checkpoint warms the serialization pools and trims
		// the replay log, so the timed region measures the steady state.
		if err := op.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		gens, err := backend.Generations()
		if err != nil || len(gens) == 0 {
			b.Fatalf("no committed checkpoint to size (gens=%v err=%v)", gens, err)
		}
		blobs, err := backend.Load(gens[0])
		if err != nil {
			b.Fatal(err)
		}
		snapBytes := 0
		for _, bl := range blobs {
			snapBytes += len(bl.Data)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := op.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := op.Finish(); err != nil {
			b.Fatal(err)
		}
		perCkpt := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(perCkpt/1e6, "ms/ckpt")
		b.ReportMetric(float64(snapBytes)/perCkpt*1e3, "MB/s")
		b.ReportMetric(float64(snapBytes)/1e6, "snap-MB")
	}
	for _, n := range []int{20000, 100000} {
		n := n
		b.Run("tuples="+strconv.Itoa(n)+"/mem", func(b *testing.B) {
			run(b, n, squall.NewMemBackend())
		})
	}
	b.Run("tuples=100000/file", func(b *testing.B) {
		backend, err := squall.NewFileBackend(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		run(b, 100000, backend)
	})
}

// countingBackend wraps a Backend and sums committed checkpoint
// payload bytes, so a benchmark can report the exact bytes shipped per
// checkpoint without re-loading generations.
type countingBackend struct {
	squall.Backend
	writes atomic.Int64
	bytes  atomic.Int64
}

func (c *countingBackend) Write(gen uint64, data []byte, deps []uint64) error {
	err := c.Backend.Write(gen, data, deps)
	if err == nil {
		c.writes.Add(1)
		c.bytes.Add(int64(len(data)))
	}
	return err
}

// BenchmarkCheckpointIncremental measures the PR-9 incremental
// checkpoint plane: after a 100k-tuple base and one full checkpoint,
// each iteration ingests a fraction of the base (1%, 10%, or 100%)
// and checkpoints it. The delta modes never compact, so every timed
// commit ships only the blocks appended since the last one; the full
// modes force CheckpointCompactEvery=1, so every commit re-ships the
// whole (growing) state — the baseline the delta payload and pause are
// judged against at the same ingest cadence. Ingest happens with the
// timer stopped: ms/ckpt is the pure checkpoint pause, payload-MB the
// average committed payload.
func BenchmarkCheckpointIncremental(b *testing.B) {
	const base = 100000
	run := func(b *testing.B, frac float64, compactEvery int) {
		cb := &countingBackend{Backend: squall.NewMemBackend()}
		var cnt atomic.Int64
		op := squall.NewOperator(squall.Config{
			J: 16, Pred: squall.EquiJoin("bench", nil), Seed: 1,
			Backend:                cb,
			CheckpointCompactEvery: compactEvery,
			EmitBatch:              func(ps []squall.Pair) { cnt.Add(int64(len(ps))) },
		})
		op.Start()
		// Unique keys with alternating sides: no key ever appears on
		// both sides, so the state grows without emitting pairs.
		next := int64(0)
		buf := make([]squall.Tuple, 0, 32)
		feed := func(n int) {
			for i := 0; i < n; i++ {
				side := squall.SideR
				if next%2 == 1 {
					side = squall.SideS
				}
				buf = append(buf, squall.Tuple{Rel: side, Key: next, Size: 8})
				next++
				if len(buf) == cap(buf) {
					if err := op.SendBatch(buf); err != nil {
						b.Fatal(err)
					}
					buf = buf[:0]
				}
			}
			if len(buf) > 0 {
				if err := op.SendBatch(buf); err != nil {
					b.Fatal(err)
				}
				buf = buf[:0]
			}
		}
		feed(base)
		if err := op.Checkpoint(); err != nil { // untimed full base
			b.Fatal(err)
		}
		cb.writes.Store(0)
		cb.bytes.Store(0)
		deltaN := int(frac * base)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			feed(deltaN)
			b.StartTimer()
			if err := op.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := op.Finish(); err != nil {
			b.Fatal(err)
		}
		perCkpt := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(perCkpt/1e6, "ms/ckpt")
		if w := cb.writes.Load(); w > 0 {
			b.ReportMetric(float64(cb.bytes.Load())/float64(w)/1e6, "payload-MB")
		}
	}
	never := 1 << 30 // no compaction: every timed checkpoint is a delta
	for _, tc := range []struct {
		frac float64
		name string
	}{
		{0.01, "frac=1pct"},
		{0.10, "frac=10pct"},
		{1.00, "frac=100pct"},
	} {
		tc := tc
		b.Run(tc.name+"/delta", func(b *testing.B) { run(b, tc.frac, never) })
		if tc.frac < 1 {
			b.Run(tc.name+"/full", func(b *testing.B) { run(b, tc.frac, 1) })
		}
	}
}

// BenchmarkStoreBuild measures the insert plane of the joiner store in
// isolation: unique keys (R even, S odd), so every probe misses and no
// output is produced — the workload is purely hash-directory inserts
// and columnar arena appends, the cost BenchmarkOperatorIngest buries
// under routing and channel work. Each iteration builds a fresh store
// from a fixed pre-generated stream of same-side runs (the shape the
// joiner feeds AddBatchCollect); reserve=... selects whether the store
// gets the full-stream Reserve hint up front, so the delta between the
// two sub-benchmarks is the total cost of incremental directory growth
// and arena allocation. After the timed loop an untimed probe ingests
// one more stream through a presized (resp. growing) store and reports
// steady-state amortized allocations per tuple over its second half.
func BenchmarkStoreBuild(b *testing.B) {
	const (
		nTuples = 1 << 18
		runLen  = 64
	)
	stream := make([]squall.Tuple, nTuples)
	for i := range stream {
		side, key := squall.SideR, int64(2*i)
		if (i/runLen)%2 == 1 {
			side, key = squall.SideS, int64(2*i+1)
		}
		stream[i] = squall.Tuple{Rel: side, Key: key, Size: 8, Seq: uint64(i + 1)}
	}
	build := func(reserve bool, from, to int, st *storage.Store, out *[]join.Pair) *storage.Store {
		if st == nil {
			st = storage.NewStore(join.EquiJoin("bench", nil), storage.Config{})
			if reserve {
				st.Reserve(nTuples/2, nTuples/2)
			}
		}
		for start := from; start < to; start += runLen {
			st.AddBatchCollect(stream[start:start+runLen], out)
			*out = (*out)[:0]
		}
		return st
	}
	for _, mode := range []string{"reserve=0", "reserve=exact"} {
		reserve := mode == "reserve=exact"
		b.Run(mode, func(b *testing.B) {
			var out []join.Pair
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				build(reserve, 0, nTuples, nil, &out)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/nTuples, "ns/tuple")
			// Steady-state allocation probe: first half warms the store
			// (pools, directory, arena at working size), the second half
			// is measured.
			st := build(reserve, 0, nTuples/2, nil, &out)
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			build(reserve, nTuples/2, nTuples, st, &out)
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/(nTuples/2), "steady-allocs/tuple")
		})
	}
}

// BenchmarkMigrationDrain measures the adaptation cost the paper's
// design bounds: wall time from a migration decision (epoch broadcast)
// to its finalization (last joiner ack), under steady ingest, averaged
// over the elementary steps the run performs. mig=1 is the per-message
// migration plane; mig=default batches kMigTuple envelopes like the
// data plane (the PR-2 trajectory point in BENCH_PR2.json).
func BenchmarkMigrationDrain(b *testing.B) {
	for _, mig := range []int{1, 0} {
		name := "mig=1"
		if mig == 0 {
			name = "mig=default"
		}
		mig := mig
		b.Run(name, func(b *testing.B) {
			var drainPerMig, migs float64
			for i := 0; i < b.N; i++ {
				op := squall.NewOperator(squall.Config{
					J: 16, Pred: squall.EquiJoin("bench", nil), Adaptive: true,
					Warmup: 500, Seed: 11, MigBatchSize: mig,
				})
				op.Start()
				rng := rand.New(rand.NewSource(5))
				// A lopsided stream: R-heavy prefix builds state, then an
				// S flood forces the controller to reshape the grid while
				// ingest continues — migration drains compete with new
				// tuples for every joiner, as in §4.3.2.
				for t := 0; t < 500; t++ {
					op.Send(squall.Tuple{Rel: squall.SideR, Key: rng.Int63n(1 << 18), Size: 8})
				}
				for t := 0; t < 60000; t++ {
					op.Send(squall.Tuple{Rel: squall.SideS, Key: rng.Int63n(1 << 18), Size: 8})
				}
				if err := op.Finish(); err != nil {
					b.Fatal(err)
				}
				// MigrationNanos covers every timed epoch step, so
				// average over migrations and expansions alike (this
				// stream triggers no expansions; the sum keeps the
				// figure honest if the decider's behavior shifts).
				migs = float64(op.Migrations() + op.Metrics().Expansions.Load())
				drainPerMig = 0
				if migs > 0 {
					drainPerMig = float64(op.Metrics().MigrationDrain().Microseconds()) / migs
				}
			}
			b.ReportMetric(drainPerMig, "µs/migration")
			b.ReportMetric(migs, "migrations")
		})
	}
}

// BenchmarkSimProcess measures the deterministic simulator's per-tuple
// cost (the experiment harness hot path).
func BenchmarkSimProcess(b *testing.B) {
	sim := squall.NewSim(squall.SimConfig{J: 64, Adaptive: true, MatchWidth: 0})
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		side := squall.SideR
		if i%3 == 0 {
			side = squall.SideS
		}
		sim.Process(side, rng.Int63n(4096))
	}
}

// BenchmarkLocalEquiAdd measures the local symmetric hash join.
func BenchmarkLocalEquiAdd(b *testing.B) {
	l := join.NewLocal(join.EquiJoin("bench", nil))
	emit, _ := join.CountingEmit()
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := matrix.SideR
		if i%2 == 1 {
			rel = matrix.SideS
		}
		l.Add(join.Tuple{Rel: rel, Key: rng.Int63n(1 << 16), Size: 8}, emit)
	}
}

// BenchmarkOrderedIndexBandProbe measures the B-tree band index.
func BenchmarkOrderedIndexBandProbe(b *testing.B) {
	idx := join.NewOrderedIndex(5)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		idx.Insert(join.Tuple{Rel: matrix.SideS, Key: rng.Int63n(1 << 20)})
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		idx.Probe(join.Tuple{Rel: matrix.SideR, Key: rng.Int63n(1 << 20)}, func(join.Tuple) { n++ })
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationEpsilon sweeps Alg. 2's ε and reports the
// optimality/communication tradeoff of Theorem 4.2: smaller ε migrates
// more (higher traffic) but tracks the optimum more tightly.
func BenchmarkAblationEpsilon(b *testing.B) {
	for _, eps := range []float64{1.0, 0.5, 0.25} {
		eps := eps
		b.Run(strconv.FormatFloat(eps, 'f', 2, 64), func(b *testing.B) {
			var migrated, worst float64
			var migs int
			for i := 0; i < b.N; i++ {
				sim := squall.NewSim(squall.SimConfig{
					J: 64, Adaptive: true, Epsilon: eps, Warmup: 2000,
					MatchWidth: -1, SampleEvery: 200,
				})
				// Slow drift: the mix leans S-ward then R-ward in long
				// waves, so a finer ε catches the drift earlier.
				for t := 0; t < 200000; t++ {
					if (t/40000)%2 == 0 && t%5 != 0 {
						sim.Process(squall.SideS, 0)
					} else {
						sim.Process(squall.SideR, 0)
					}
				}
				res := sim.Finish()
				migrated = res.Migrated / float64(res.R+res.S)
				migs = res.Migrations
				// Post-warmup worst competitive ratio.
				worst = 1
				series := sim.Ratio.Series()
				for k := 0; k < series.Len(); k++ {
					if x, y := series.At(k); x > 6000 && y > worst {
						worst = y
					}
				}
			}
			b.ReportMetric(migrated, "mig/tuple")
			b.ReportMetric(float64(migs), "migrations")
			b.ReportMetric(worst, "max-ratio")
		})
	}
}

// BenchmarkAblationLocalityAwareMigration compares the locality-aware
// pairwise exchange (Lemma 4.4) against a naive full repartition of
// all state, in migrated tuples per elementary step.
func BenchmarkAblationLocalityAwareMigration(b *testing.B) {
	const j = 64
	var locality, naive float64
	for i := 0; i < b.N; i++ {
		locality, naive = 0, 0
		r, s := int64(500000), int64(500000)
		cur := matrix.Square(j)
		for _, step := range cur.StepsTo(matrix.Mapping{N: 1, M: 64}) {
			tr := matrix.NewTransition(cur, step)
			// Locality-aware: each machine ships only its exchange-side
			// partition to one partner.
			locality += float64(j) * tr.MigrationVolume(float64(r), float64(s))
			// Naive: every machine re-derives its full new state from
			// scratch (ships everything it must hold afterward).
			naive += float64(j) * step.ILF(float64(r), float64(s))
			cur = step
		}
	}
	b.ReportMetric(naive/locality, "naive/locality")
}

// BenchmarkAblationContentSensitiveBand compares the §6 future-work
// prototype (dead-region pruning, content-sensitive) against the
// adaptive grid operator on a uniform low-selectivity band join,
// reporting the per-machine input (ILF) advantage the pruning buys on
// uniform data — the flip side of its skew vulnerability.
func BenchmarkAblationContentSensitiveBand(b *testing.B) {
	const (
		j      = 64
		nTuple = 40000
		domain = 64000
	)
	var bandILF, gridILF float64
	for i := 0; i < b.N; i++ {
		rb := squall.NewRangeBand(squall.RangeBandConfig{
			Workers: j, Buckets: 2 * j, Lo: 0, Hi: domain, Width: 5,
		})
		rb.Start()
		rng := rand.New(rand.NewSource(31))
		for t := 0; t < nTuple; t++ {
			side := squall.SideR
			if t%2 == 1 {
				side = squall.SideS
			}
			rb.Send(squall.Tuple{Rel: side, Key: rng.Int63n(domain), Size: 8})
		}
		if err := rb.Finish(); err != nil {
			b.Fatal(err)
		}
		bandILF = float64(rb.Metrics().MaxILFTuples())

		sim := squall.NewSim(squall.SimConfig{J: j, Adaptive: true, Warmup: nTuple / 100, MatchWidth: -1})
		for t := 0; t < nTuple; t++ {
			side := squall.SideR
			if t%2 == 1 {
				side = squall.SideS
			}
			sim.Process(side, 0)
		}
		gridILF = sim.Finish().MaxILFTuples
	}
	b.ReportMetric(gridILF/bandILF, "grid/band-ILF")
}

// BenchmarkAblationWarmup quantifies the cold-start thrash the warmup
// gate (§5.4) suppresses: without it, the controller chases the first
// few tuples' ratio and migrates needlessly.
func BenchmarkAblationWarmup(b *testing.B) {
	run := func(warmup int64) int {
		sim := squall.NewSim(squall.SimConfig{
			J: 64, Adaptive: true, Warmup: warmup, MatchWidth: -1,
		})
		// A stream whose long-run mix is balanced but whose prefix is
		// one-sided.
		for i := 0; i < 2000; i++ {
			sim.Process(squall.SideR, 0)
		}
		for i := 0; i < 100000; i++ {
			sim.Process(squall.SideS, 0)
			sim.Process(squall.SideR, 0)
		}
		return sim.Finish().Migrations
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		without = run(0)
		with = run(4000)
	}
	b.ReportMetric(float64(without), "migs-no-warmup")
	b.ReportMetric(float64(with), "migs-warmup")
}
