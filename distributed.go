package squall

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/transport"
)

// Distributed mode: the network-transparent data plane. A stage built
// with WithWorkers becomes the coordinator — it keeps the reshufflers,
// the controller, and the sink in this process and places joiner tasks
// on worker processes (cmd/joinworker), reached over TCP links with
// CRC'd, versioned envelope framing. State migration ships serialized
// arena blocks over the same links, so a remote joiner adopts migrated
// state whole instead of re-inserting tuple by tuple. The local path
// is untouched: without WithWorkers no link code runs.

// LinkError is the typed failure of a worker link: the worker address
// and the underlying transport error. A worker killed mid-stream (or
// mid-migration) surfaces from Finish/Wait as a *LinkError instead of
// a deadlock; unwrap with errors.As.
type LinkError = core.LinkError

// WithWorkers places the stage's joiner tasks on worker processes at
// the given addresses (see cmd/joinworker), turning this process into
// the coordinator. Joiners spread over the workers in contiguous
// blocks. Distributed stages require the single-grid operator
// (power-of-two joiners, no WithGrouped) and a serializable predicate
// (equi or band, no residual closure), and exclude WithBackend
// checkpointing and WithElastic expansion.
func WithWorkers(addrs ...string) Option {
	return func(sc *stageConfig) { sc.cfg.Workers = append([]string(nil), addrs...) }
}

// WithPlacement pins each joiner id to a worker index from
// WithWorkers, with -1 keeping that joiner in the coordinator process.
// Without it, joiners spread in contiguous blocks with none local.
func WithPlacement(place ...int) Option {
	return func(sc *stageConfig) { sc.cfg.Placement = append([]int(nil), place...) }
}

// WithListen marks this process as a worker listening on addr (e.g.
// "127.0.0.1:9701"); consumed by ServeWorker, ignored by stage
// builders.
func WithListen(addr string) Option {
	return func(sc *stageConfig) { sc.listen = addr }
}

// WorkerServer is a bound worker listener; Serve runs one coordinator
// session over it.
type WorkerServer struct {
	lis transport.Listener
	cfg core.WorkerConfig
}

// NewWorkerServer binds a worker listener on addr (":0" picks a free
// port — read it back from Addr). Options supply worker-local
// resources: WithStorage's Dir becomes the local spill directory (the
// memory budget itself arrives from the coordinator).
func NewWorkerServer(addr string, opts ...Option) (*WorkerServer, error) {
	sc := newStageConfig(nil, opts)
	lis, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &WorkerServer{lis: lis, cfg: core.WorkerConfig{SpillDir: sc.cfg.Storage.Dir}}, nil
}

// Addr returns the bound listen address.
func (ws *WorkerServer) Addr() string { return ws.lis.Addr() }

// Serve accepts one coordinator session and runs its hosted joiners to
// completion: nil after a clean stream, a *LinkError if the
// coordinator link fails mid-stream, ctx.Err() if cancelled.
func (ws *WorkerServer) Serve(ctx context.Context) error {
	return core.ServeWorker(ctx, ws.lis, ws.cfg)
}

// Close closes the listener.
func (ws *WorkerServer) Close() error { return ws.lis.Close() }

// ServeWorker is the one-call worker entry point: bind the WithListen
// address, serve one coordinator session, close the listener.
func ServeWorker(ctx context.Context, opts ...Option) error {
	sc := newStageConfig(nil, opts)
	if sc.listen == "" {
		return errors.New("squall: ServeWorker requires WithListen")
	}
	ws, err := NewWorkerServer(sc.listen, opts...)
	if err != nil {
		return fmt.Errorf("squall: worker listen: %w", err)
	}
	defer ws.Close()
	return ws.Serve(ctx)
}
