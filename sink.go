package squall

import "sync/atomic"

// Sink is the unified result path of a pipeline stage: one abstraction
// over the per-pair and per-run emit hooks, so a stage is always
// terminated the same way regardless of how the consumer wants its
// results. Build one with Each (per-pair callback), Batches (per-run
// callback, the vectorized form), or Counter (count only).
//
// Sinks are invoked concurrently by the stage's joiner tasks and must
// be safe for concurrent use; the callbacks must not block. A slice
// passed to a Batches sink is only valid for the duration of the call
// — the emitter reuses the backing buffer.
type Sink interface {
	// sinkBatch resolves the sink to the engine's vectorized emit
	// hook. The interface is sealed: the pipeline owns the adaptation
	// from sinks to engine hooks.
	sinkBatch() EmitBatch
}

// eachSink adapts a per-pair function.
type eachSink func(Pair)

func (s eachSink) sinkBatch() EmitBatch {
	return func(ps []Pair) {
		for i := range ps {
			s(ps[i])
		}
	}
}

// Each returns a sink calling f once per result pair. f runs inline on
// joiner tasks: it must be cheap, non-blocking, and safe for
// concurrent use.
func Each(f func(Pair)) Sink { return eachSink(f) }

// batchSink adapts a per-run function.
type batchSink func([]Pair)

func (s batchSink) sinkBatch() EmitBatch { return EmitBatch(s) }

// Batches returns a sink calling f once per flushed run of results —
// the vectorized form, amortizing the consumer's per-result work the
// way the batched message plane amortizes per-tuple synchronization.
// The slice is only valid during the call; copy pairs that must be
// retained.
func Batches(f func([]Pair)) Sink { return batchSink(f) }

// counterSink counts results.
type counterSink struct{ n *atomic.Int64 }

func (s counterSink) sinkBatch() EmitBatch {
	return func(ps []Pair) { s.n.Add(int64(len(ps))) }
}

// Counter returns a sink that only counts results, plus the counter —
// the cheapest terminal when the output volume, not its content, is
// the quantity of interest.
func Counter() (Sink, *atomic.Int64) {
	n := new(atomic.Int64)
	return counterSink{n: n}, n
}
