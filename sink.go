package squall

import (
	"sync"
	"sync/atomic"
)

// Sink is the unified result path of a pipeline stage: one abstraction
// over the per-pair and per-run emit hooks, so a stage is always
// terminated the same way regardless of how the consumer wants its
// results. Build one with Each (per-pair callback), Batches (per-run
// callback, the vectorized form), or Counter (count only).
//
// Sinks are invoked concurrently by the stage's joiner tasks and must
// be safe for concurrent use; the callbacks must not block. A slice
// passed to a Batches sink is only valid for the duration of the call
// — the emitter reuses the backing buffer.
type Sink interface {
	// sinkBatch resolves the sink to the engine's vectorized emit
	// hook. The interface is sealed: the pipeline owns the adaptation
	// from sinks to engine hooks.
	sinkBatch() EmitBatch
}

// eachSink adapts a per-pair function.
type eachSink func(Pair)

func (s eachSink) sinkBatch() EmitBatch {
	return func(ps []Pair) {
		for i := range ps {
			s(ps[i])
		}
	}
}

// Each returns a sink calling f once per result pair. f runs inline on
// joiner tasks: it must be cheap, non-blocking, and safe for
// concurrent use.
func Each(f func(Pair)) Sink { return eachSink(f) }

// batchSink adapts a per-run function.
type batchSink func([]Pair)

func (s batchSink) sinkBatch() EmitBatch { return EmitBatch(s) }

// Batches returns a sink calling f once per flushed run of results —
// the vectorized form, amortizing the consumer's per-result work the
// way the batched message plane amortizes per-tuple synchronization.
// The slice is only valid during the call; copy pairs that must be
// retained.
func Batches(f func([]Pair)) Sink { return batchSink(f) }

// shardFunc adapts a per-shard function.
type shardFunc func(shard int, ps []Pair)

// sinkBatch is the fallback for an engine without a sharded emit hook:
// one mutex serializes everything onto shard 0 — the contract (calls
// within a shard serialized) still holds, degenerately. The core
// engines all expose the sharded hook, so this path is not normally
// taken.
func (s shardFunc) sinkBatch() EmitBatch {
	var mu sync.Mutex
	return func(ps []Pair) {
		mu.Lock()
		s(0, ps)
		mu.Unlock()
	}
}

// sinkSharded resolves the sink to the engine's sharded emit hook; the
// pipeline detects it via an unexported interface assertion, keeping
// Sink sealed.
func (s shardFunc) sinkSharded() ShardedEmitBatch { return ShardedEmitBatch(s) }

// Sharded returns a sink calling f once per flushed run of results,
// tagged with the emitting shard (the joiner id, offset per group
// under the grouped decomposition — elastic expansion mints new shard
// ids beyond the initial joiner count). Calls within one shard are
// serialized; different shards run concurrently with no cross-shard
// ordering guarantee. This is the sink form that lets J joiners emit
// without funneling through one shared mutex: give each shard its own
// accumulator (padded to a cache line) and merge on read. The slice is
// only valid during the call; the result multiset is exactly Each's
// and Batches's — only the delivery order across shards differs.
func Sharded(f func(shard int, ps []Pair)) Sink { return shardFunc(f) }

// counterSink counts results.
type counterSink struct{ n *atomic.Int64 }

func (s counterSink) sinkBatch() EmitBatch {
	return func(ps []Pair) { s.n.Add(int64(len(ps))) }
}

// counterCell isolates the counter on its own cache line: a Counter is
// hammered concurrently by every joiner (or emit worker), and an
// unpadded heap cell can share its line with whatever the allocator
// placed next to it — turning an unrelated reader into a false-sharing
// victim.
type counterCell struct {
	_ [64]byte
	n atomic.Int64
	_ [56]byte
}

// Counter returns a sink that only counts results, plus the counter —
// the cheapest terminal when the output volume, not its content, is
// the quantity of interest.
func Counter() (Sink, *atomic.Int64) {
	c := new(counterCell)
	return counterSink{n: &c.n}, &c.n
}
