package squall

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/join"
)

// Option configures one pipeline stage, or — passed to NewPipeline —
// the defaults every stage of that pipeline inherits. Options are the
// documented construction path for engines; the raw Config structs
// remain as compatibility shims.
type Option func(*stageConfig)

// stageConfig is the resolved configuration of one stage before its
// engine is built.
type stageConfig struct {
	cfg core.Config
	// grouped forces the power-of-two group decomposition even when J
	// is a power of two (one group); it is implied when J is not.
	grouped bool
	// listen is the worker-mode listen address (WithListen), consumed
	// by ServeWorker rather than a stage builder.
	listen string
}

// DefaultJoiners is the joiner-task count used when WithJoiners is not
// given.
const DefaultJoiners = 16

func newStageConfig(defaults, opts []Option) stageConfig {
	sc := stageConfig{cfg: core.Config{J: DefaultJoiners}}
	for _, o := range defaults {
		o(&sc)
	}
	for _, o := range opts {
		o(&sc)
	}
	return sc
}

// WithJoiners sets the machine (joiner-task) count. Powers of two run
// the single-grid operator; any other count runs the power-of-two
// group decomposition (§4.2.2) automatically.
func WithJoiners(j int) Option { return func(sc *stageConfig) { sc.cfg.J = j } }

// WithGrouped forces the group-decomposed operator even for a
// power-of-two joiner count (a single group); mostly useful for tests
// comparing the two drive paths.
func WithGrouped() Option { return func(sc *stageConfig) { sc.grouped = true } }

// WithAdaptive enables the controller's migration decisions; without
// it the stage runs a static grid.
func WithAdaptive() Option { return func(sc *stageConfig) { sc.cfg.Adaptive = true } }

// WithWarmup sets the minimum (estimated) input before the first
// adaptation (the paper uses 500K tuples, §5.4).
func WithWarmup(tuples int64) Option { return func(sc *stageConfig) { sc.cfg.Warmup = tuples } }

// WithEpsilon sets Alg. 2's ε (0 means 1, the 1.25-competitive
// setting): smaller tracks the optimum more tightly but migrates more.
func WithEpsilon(eps float64) Option { return func(sc *stageConfig) { sc.cfg.Epsilon = eps } }

// WithInitialMapping pins the starting (n,m) grid; the zero value
// means the square mapping. Combine with a non-adaptive stage for the
// StaticMid/StaticOpt baselines.
func WithInitialMapping(m Mapping) Option { return func(sc *stageConfig) { sc.cfg.Initial = m } }

// WithSeed makes the stage's routing randomness reproducible.
func WithSeed(seed int64) Option { return func(sc *stageConfig) { sc.cfg.Seed = seed } }

// WithBatchSize sets the data-plane batch envelope capacity in
// messages (default DefaultBatchSize; 1 degenerates to the
// per-message plane). Chained stages also size their inter-stage
// forwarding buffers with it.
func WithBatchSize(n int) Option { return func(sc *stageConfig) { sc.cfg.BatchSize = n } }

// WithBatchLinger bounds how long a routed tuple may wait in a partial
// batch (default DefaultBatchLinger; negative disables the timer).
func WithBatchLinger(d time.Duration) Option {
	return func(sc *stageConfig) { sc.cfg.BatchLinger = d }
}

// WithMigBatchSize sets the migration-plane envelope capacity
// (default: the data-plane batch size; 1 degenerates to per-message).
func WithMigBatchSize(n int) Option { return func(sc *stageConfig) { sc.cfg.MigBatchSize = n } }

// WithStorage bounds per-joiner memory and configures the disk-spill
// tier.
func WithStorage(cfg StorageConfig) Option { return func(sc *stageConfig) { sc.cfg.Storage = cfg } }

// WithBackend enables barrier checkpointing against the given durable
// store: Operator.Checkpoint (and the WithCheckpointEvery pacer)
// snapshots joiner state, controller mapping, and ingest cursors
// through it, and Restore rebuilds from its latest committed snapshot.
// Only the single-grid operator supports it; a grouped stage
// (non-power-of-two joiners, or WithGrouped) rejects it at build time.
func WithBackend(b Backend) Option { return func(sc *stageConfig) { sc.cfg.Backend = b } }

// WithCheckpointEvery makes a backend-equipped stage checkpoint
// automatically after every n ingested tuples. Requires WithBackend;
// 0 (the default) leaves checkpointing purely manual.
func WithCheckpointEvery(n int64) Option {
	return func(sc *stageConfig) { sc.cfg.CheckpointEvery = n }
}

// WithCheckpointKeep retains the newest k committed checkpoint
// generations in the backend instead of only the latest, enabling
// last-good fallback: when the newest generation is corrupt, Restore
// falls back to the next retained one and replay covers the gap. The
// replay log is trimmed only to the oldest retained generation's cut.
// 0 (the default) means storage.DefaultKeep (2); values below 1 clamp
// to 1.
func WithCheckpointKeep(k int) Option {
	return func(sc *stageConfig) { sc.cfg.CheckpointKeep = k }
}

// WithCheckpointCompactEvery bounds the incremental-checkpoint chain:
// after n consecutive snapshots the next one is forced full, folding
// the base+delta chain back to a single base. Between compactions each
// checkpoint ships only arena blocks (and spill suffix) appended since
// the previous committed one — the payload scales with the delta, not
// the stored state. 0 (the default) means
// core.DefaultCheckpointCompactEvery (8); 1 disables incremental
// checkpoints (every snapshot full).
func WithCheckpointCompactEvery(n int) Option {
	return func(sc *stageConfig) { sc.cfg.CheckpointCompactEvery = n }
}

// CheckpointPolicy selects the operator's reaction to a checkpoint
// commit that fails after the backend's retries: Degrade or FailStop.
type CheckpointPolicy = core.CheckpointPolicy

const (
	// Degrade (the default) keeps the operator joining through backend
	// outages: a failed checkpoint logs, bumps the CheckpointFailures
	// metric, and leaves the replay log untrimmed, so the previous
	// checkpoint stays fully recoverable; the next boundary retries.
	Degrade = core.CkptDegrade
	// FailStop cancels the operator on the first failed checkpoint
	// commit; the wrapped backend error surfaces from Finish (and from
	// the blocked Checkpoint call).
	FailStop = core.CkptFailStop
)

// WithCheckpointPolicy selects Degrade or FailStop behavior for failed
// checkpoint commits.
func WithCheckpointPolicy(p CheckpointPolicy) Option {
	return func(sc *stageConfig) { sc.cfg.CheckpointPolicy = p }
}

// WithLatency attaches a latency sampler to the stage.
func WithLatency(l *LatencySampler) Option { return func(sc *stageConfig) { sc.cfg.Latency = l } }

// WithReshufflers sets the reshuffler-task count (default: one per
// joiner). The grouped engine ignores it: each group structurally
// runs a single reshuffler to obtain a total delivery order.
func WithReshufflers(n int) Option { return func(sc *stageConfig) { sc.cfg.NumReshufflers = n } }

// WithSourceLanes shards the ingest front end for concurrent feeders:
// each of the n lanes owns a private sequence-number window (granted
// from the global counter in coarse blocks) and a home reshuffler
// ring, so n goroutines calling Send/SendBatch do not contend on one
// atomic counter and one deal path. n <= 0 resolves to
// runtime.GOMAXPROCS(0). With one lane (the default) the stage keeps
// the legacy deterministic front end: dense sequence numbers and the
// pseudo-random deal. The grouped engine ignores it — cross-group
// consistency needs the single shared arrival order.
func WithSourceLanes(n int) Option {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return func(sc *stageConfig) { sc.cfg.SourceLanes = n }
}

// WithEmitWorkers moves sink invocation off the joiner tasks onto n
// dedicated emit workers: each joiner accumulates results in a pooled
// pair buffer and hands the full buffer over by pointer (joiner id mod
// n picks the home worker, mirroring the source-lane affinity of
// WithSourceLanes; non-sharded sinks spill to other workers under
// pressure), then returns to probing. n <= 0 resolves to
// runtime.GOMAXPROCS(0). Without this option sinks run inline on the
// joiner tasks. The result multiset is identical either way; with a
// Sharded sink each shard stays pinned to its home worker, so the
// per-shard serialization contract survives the handoff.
func WithEmitWorkers(n int) Option {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return func(sc *stageConfig) { sc.cfg.EmitWorkers = n }
}

// WithElastic enables 1-to-4 elastic expansion once any joiner stores
// more than maxPerJoiner tuples, capped at maxJoiners total (0: no
// cap).
func WithElastic(maxPerJoiner int64, maxJoiners int) Option {
	return func(sc *stageConfig) {
		sc.cfg.MaxTuplesPerJoiner = maxPerJoiner
		sc.cfg.MaxJoiners = maxJoiners
	}
}

// WithPadDummies enables physical dummy-tuple padding, keeping the
// cardinality ratio within J (§4.2.2). Only the single-grid engine
// honors it; a grouped stage (non-power-of-two joiners) ignores it.
func WithPadDummies() Option { return func(sc *stageConfig) { sc.cfg.PadDummies = true } }

// Equi returns an equality predicate on Tuple.Key — the pipeline-API
// shorthand for EquiJoin(name, nil).
func Equi(name string) Predicate { return join.EquiJoin(name, nil) }

// Band returns a |r.Key - s.Key| <= width predicate — the shorthand
// for BandJoin(name, width, nil).
func Band(name string, width int64) Predicate { return join.BandJoin(name, width, nil) }

// Theta returns an arbitrary join predicate — the shorthand for
// ThetaJoin.
func Theta(name string, pred func(r, s Tuple) bool) Predicate { return join.ThetaJoin(name, pred) }

// NewEngine builds a standalone engine from options, without a
// pipeline: the operator implementation is chosen from the joiner
// count (single grid for powers of two, group decomposition
// otherwise), and sink wires the result path (nil counts results
// internally). Drive it with the Engine lifecycle: Start or
// StartContext, Send/SendBatch, Finish.
func NewEngine(pred Predicate, sink Sink, opts ...Option) Engine {
	sc := newStageConfig(nil, opts)
	return sc.build(pred, sink)
}

// build constructs the stage's engine. The grouped operator exposes a
// narrower tuning surface; options it cannot honor fall back to its
// defaults: batch sizes and linger, the initial mapping, elasticity,
// dummy padding (WithPadDummies), source lanes (WithSourceLanes —
// cross-group consistency needs one shared arrival order), and the
// reshuffler count (each group structurally runs one reshuffler to
// keep a total delivery order).
func (sc stageConfig) build(pred Predicate, sink Sink) Engine {
	var emitBatch EmitBatch
	var emitShard ShardedEmitBatch
	if sink != nil {
		// A sharded sink resolves to the engine's sharded hook (the
		// assertion keeps Sink sealed); everything else to the
		// vectorized batch hook.
		if sh, ok := sink.(interface{ sinkSharded() ShardedEmitBatch }); ok {
			emitShard = sh.sinkSharded()
		} else {
			emitBatch = sink.sinkBatch()
		}
	}
	if sc.grouped || !isPow2(sc.cfg.J) {
		if len(sc.cfg.Workers) > 0 {
			// Like WithBackend below: silently dropping WithWorkers would
			// run everything locally, not just fall back on tuning.
			panic("squall: WithWorkers requires the single-grid operator (power-of-two joiners, no WithGrouped)")
		}
		if sc.cfg.Backend != nil {
			// Unlike the perf options above, silently dropping WithBackend
			// would change durability semantics, not just tuning — refuse.
			panic("squall: WithBackend requires the single-grid operator (power-of-two joiners, no WithGrouped)")
		}
		return core.NewGrouped(core.GroupedConfig{
			J:           sc.cfg.J,
			Pred:        pred,
			Adaptive:    sc.cfg.Adaptive,
			Warmup:      sc.cfg.Warmup,
			Epsilon:     sc.cfg.Epsilon,
			Storage:     sc.cfg.Storage,
			EmitBatch:   emitBatch,
			EmitShard:   emitShard,
			EmitWorkers: sc.cfg.EmitWorkers,
			Latency:     sc.cfg.Latency,
			Seed:        sc.cfg.Seed,
		})
	}
	cfg := sc.cfg
	cfg.Pred = pred
	cfg.EmitBatch = emitBatch
	cfg.EmitShard = emitShard
	return core.NewOperator(cfg)
}

// batchSize returns the stage's effective data-plane batch size, which
// also sizes inter-stage forwarding buffers.
func (sc stageConfig) batchSize() int {
	if sc.cfg.BatchSize > 0 {
		return sc.cfg.BatchSize
	}
	return core.DefaultBatchSize
}

func isPow2(j int) bool { return j > 0 && j&(j-1) == 0 }
