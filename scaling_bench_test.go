// Scaling benchmarks of the sharded ingest front end: tuples/sec as a
// function of GOMAXPROCS with one concurrent feeder per core, the PR-6
// trajectory rows in BENCH_PR6.json. Sub-benchmark names use the
// nested j=<J>/procs=<P> form (no dashes) so benchdelta's mode parsing
// survives Go's own -<GOMAXPROCS> suffix convention.
package squall_test

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	squall "repro"
)

// scalingChunk is the SendBatch run length the scaling feeders use —
// large enough to amortize the lane grant and envelope handoff,
// small enough to keep every reshuffler busy.
const scalingChunk = 256

// scalingProcs are the GOMAXPROCS points of the trajectory. On hosts
// with fewer cores the higher points still run (the Go scheduler
// multiplexes), recording honest flat numbers; the CI runners provide
// the multi-core rows.
var scalingProcs = []int{1, 2, 4}

// shardStream splits a pre-built stream round-robin into n feeder
// shards.
func shardStream(tuples []squall.Tuple, n int) [][]squall.Tuple {
	shards := make([][]squall.Tuple, n)
	for i := range shards {
		shards[i] = make([]squall.Tuple, 0, len(tuples)/n+1)
	}
	for i, tp := range tuples {
		shards[i%n] = append(shards[i%n], tp)
	}
	return shards
}

// feedShards runs one concurrent feeder per shard, each delivering its
// shard through SendBatch in scalingChunk-tuple runs.
func feedShards(b *testing.B, op *squall.Operator, shards [][]squall.Tuple) {
	b.Helper()
	var wg sync.WaitGroup
	for _, shard := range shards {
		shard := shard
		wg.Add(1)
		go func() {
			defer wg.Done()
			for start := 0; start < len(shard); start += scalingChunk {
				end := start + scalingChunk
				if end > len(shard) {
					end = len(shard)
				}
				if err := op.SendBatch(shard[start:end]); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkScalingIngest measures ingest-dominated throughput (sparse
// keys, negligible output) across a J x GOMAXPROCS grid with procs
// concurrent feeders and procs source lanes. Each iteration runs a
// fixed 200k-tuple stream through a fresh operator; ns/tuple and
// tuples/s are reported per metric, so the procs=1 -> procs=4 ratio at
// fixed J is the ingest scaling the lane sharding buys.
func BenchmarkScalingIngest(b *testing.B) {
	const nTuples = 200000
	stream := func() []squall.Tuple {
		rng := rand.New(rand.NewSource(61))
		tuples := make([]squall.Tuple, nTuples)
		for i := range tuples {
			side := squall.SideR
			if i%2 == 1 {
				side = squall.SideS
			}
			tuples[i] = squall.Tuple{Rel: side, Key: rng.Int63n(1 << 20), Size: 8}
		}
		return tuples
	}()
	for _, j := range []int{4, 16, 64} {
		j := j
		b.Run("j="+strconv.Itoa(j), func(b *testing.B) {
			for _, procs := range scalingProcs {
				procs := procs
				b.Run("procs="+strconv.Itoa(procs), func(b *testing.B) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					shards := shardStream(stream, procs)
					b.ResetTimer()
					for iter := 0; iter < b.N; iter++ {
						var n atomic.Int64
						op := squall.NewOperator(squall.Config{
							J: j, Pred: squall.EquiJoin("scale", nil), Seed: 1,
							SourceLanes: procs,
							EmitBatch:   func(ps []squall.Pair) { n.Add(int64(len(ps))) },
						})
						op.Start()
						feedShards(b, op, shards)
						if err := op.Finish(); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
					b.ReportMetric(perIter/nTuples, "ns/tuple")
					b.ReportMetric(nTuples/(perIter/1e9), "tuples/s")
				})
			}
		})
	}
}

// shardCounter is one shard's pair counter, padded past a cache line
// so concurrent per-shard increments never collide on one.
type shardCounter struct {
	n atomic.Int64
	_ [56]byte
}

// BenchmarkScalingFanout measures the output-dominated regime (small
// key domain, every probe fans out) at J=16 across GOMAXPROCS, with
// the full PR-7 emit plane engaged: procs source lanes on ingest,
// procs emit workers on egress, and a sharded per-core counter sink.
// The procs=1 -> procs=4 ns/tuple ratio is the emit-plane scaling
// figure benchdelta gates with -minscalefanout.
func BenchmarkScalingFanout(b *testing.B) {
	const (
		nTuples = 100000
		domain  = 512
	)
	stream := func() []squall.Tuple {
		rng := rand.New(rand.NewSource(62))
		tuples := make([]squall.Tuple, nTuples)
		for i := range tuples {
			side := squall.SideR
			if i%2 == 1 {
				side = squall.SideS
			}
			tuples[i] = squall.Tuple{Rel: side, Key: rng.Int63n(domain), Size: 8}
		}
		return tuples
	}()
	for _, procs := range scalingProcs {
		procs := procs
		b.Run("j=16/procs="+strconv.Itoa(procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			shards := shardStream(stream, procs)
			var pairs int64
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				counters := make([]shardCounter, 16)
				op := squall.NewOperator(squall.Config{
					J: 16, Pred: squall.EquiJoin("scale", nil), Seed: 1,
					SourceLanes: procs,
					EmitWorkers: procs,
					EmitShard: func(shard int, ps []squall.Pair) {
						counters[shard].n.Add(int64(len(ps)))
					},
				})
				op.Start()
				feedShards(b, op, shards)
				if err := op.Finish(); err != nil {
					b.Fatal(err)
				}
				pairs = 0
				for i := range counters {
					pairs += counters[i].n.Load()
				}
			}
			b.StopTimer()
			perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(perIter/nTuples, "ns/tuple")
			b.ReportMetric(nTuples/(perIter/1e9), "tuples/s")
			b.ReportMetric(float64(pairs)/nTuples, "pairs/tuple")
		})
	}
}
