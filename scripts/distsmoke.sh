#!/usr/bin/env sh
# Distributed smoke drill (mirrored by CI's distributed-smoke job):
# build joinrun and joinworker, start two worker processes on free
# localhost ports, run a skewed ~100k-tuple equi-join once
# single-process and once with the joiners placed on the workers, and
# require identical pair counts, at least one adaptive migration over
# the links, and a clean exit from every process. This is the
# multi-binary path the in-repo e2e test (distributed_test.go) cannot
# cover: the real CLI surface, real signals, real process teardown.
set -eu
cd "$(dirname "$0")/.."
GO="${GO:-go}"

bindir="$(mktemp -d)"
w1pid=""
w2pid=""
cleanup() {
  [ -n "$w1pid" ] && kill "$w1pid" 2>/dev/null || true
  [ -n "$w2pid" ] && kill "$w2pid" 2>/dev/null || true
  rm -rf "$bindir"
}
trap cleanup EXIT

echo "distsmoke: building joinrun and joinworker"
"$GO" build -o "$bindir/joinrun" ./cmd/joinrun
"$GO" build -o "$bindir/joinworker" ./cmd/joinworker

# wait_addr polls a worker log for its bound-address announcement.
wait_addr() {
  i=0
  while [ "$i" -lt 100 ]; do
    addr="$(sed -n 's/^joinworker: listening //p' "$1")"
    if [ -n "$addr" ]; then
      echo "$addr"
      return 0
    fi
    i=$((i + 1))
    sleep 0.1
  done
  echo "distsmoke: worker never announced its address ($1)" >&2
  cat "$1" >&2
  return 1
}

"$bindir/joinworker" -listen 127.0.0.1:0 >"$bindir/w1.log" 2>&1 &
w1pid=$!
"$bindir/joinworker" -listen 127.0.0.1:0 >"$bindir/w2.log" 2>&1 &
w2pid=$!
addr1="$(wait_addr "$bindir/w1.log")"
addr2="$(wait_addr "$bindir/w2.log")"
echo "distsmoke: workers on $addr1 and $addr2"

# SF 0.2 puts ~120k tuples through the links — big enough that the
# stream is still running when the adaptive controller migrates.
run="-query EQ5 -op dynamic -j 8 -sf 0.2 -zipf Z2 -seed 42"

echo "distsmoke: single-process reference run"
"$bindir/joinrun" $run >"$bindir/base.log"
echo "distsmoke: distributed run against the two workers"
"$bindir/joinrun" $run -workers "$addr1,$addr2" >"$bindir/dist.log"

pairs_base="$(sed -n 's/^output  *\([0-9]*\) pairs$/\1/p' "$bindir/base.log")"
pairs_dist="$(sed -n 's/^output  *\([0-9]*\) pairs$/\1/p' "$bindir/dist.log")"
migrations="$(sed -n 's/.*(migrations=\([0-9]*\))$/\1/p' "$bindir/dist.log")"

echo "distsmoke: base=$pairs_base pairs, distributed=$pairs_dist pairs, migrations=$migrations"
if [ -z "$pairs_base" ] || [ "$pairs_base" != "$pairs_dist" ]; then
  echo "distsmoke: FAILED pair-count mismatch (base=$pairs_base distributed=$pairs_dist)" >&2
  cat "$bindir/dist.log" >&2
  exit 1
fi
if [ -z "$migrations" ] || [ "$migrations" -eq 0 ]; then
  echo "distsmoke: FAILED no migrations crossed the links (migrations=$migrations)" >&2
  exit 1
fi

# Both workers serve exactly one session and exit 0 on a clean stream.
if ! wait "$w1pid"; then
  echo "distsmoke: FAILED worker 1 exited non-zero" >&2
  cat "$bindir/w1.log" >&2
  exit 1
fi
if ! wait "$w2pid"; then
  echo "distsmoke: FAILED worker 2 exited non-zero" >&2
  cat "$bindir/w2.log" >&2
  exit 1
fi
w1pid=""
w2pid=""
if ! grep -q "session complete" "$bindir/w1.log" || ! grep -q "session complete" "$bindir/w2.log"; then
  echo "distsmoke: FAILED a worker did not report a complete session" >&2
  cat "$bindir/w1.log" "$bindir/w2.log" >&2
  exit 1
fi
echo "distsmoke: PASSED"
