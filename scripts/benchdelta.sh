#!/usr/bin/env sh
# Shared bench-delta driver: the Makefile's bench-delta target and the
# CI bench-smoke job both run this script, so the benchmark set, the
# iteration budgets, and the benchdelta gating flags can never drift
# between local and CI invocations.
#
# The sparse ingest, high-fanout, store-build, chain, and scaling
# benchmarks need different iteration budgets (the fanout and scaling
# ones run a fixed-size stream per iteration), so they run as separate
# `go test -bench` invocations piped into ONE benchdelta process, which
# compares every line against the latest committed BENCH_PR*.json and
# exits non-zero on a regression beyond its tolerance.
#
# Extra arguments pass straight through to cmd/benchdelta, e.g.:
#   scripts/benchdelta.sh -minscale 2.5     # gate 1->4 core scaling
#   scripts/benchdelta.sh -tolerance -1     # disable the regression gate
set -eu
cd "$(dirname "$0")/.."
GO="${GO:-go}"

(
  "$GO" test -bench '^BenchmarkOperatorIngest$' -benchtime=20000x -run '^$' . ;
  "$GO" test -bench '^BenchmarkOperatorIngestFanout$' -benchtime=2x -run '^$' . ;
  "$GO" test -bench '^BenchmarkStoreBuild$' -benchtime=3x -run '^$' . ;
  "$GO" test -bench '^BenchmarkPipelineChain$' -benchtime=3x -run '^$' . ;
  "$GO" test -bench '^BenchmarkScalingIngest$' -benchtime=2x -run '^$' . ;
  "$GO" test -bench '^BenchmarkScalingFanout$' -benchtime=2x -run '^$' . ;
  "$GO" test -bench '^BenchmarkCheckpoint$' -benchtime=3x -run '^$' . ;
  "$GO" test -bench '^BenchmarkCheckpointIncremental$' -benchtime=15x -run '^$' . ;
  "$GO" test -bench '^BenchmarkTransportLink$' -benchtime=5000x -run '^$' ./internal/transport/
) | "$GO" run ./cmd/benchdelta "$@"
