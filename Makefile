# Targets mirror the CI jobs in .github/workflows/ci.yml so local and
# CI invocations are identical.

GO ?= go

.PHONY: all build build-examples test race bench bench-delta profile profile-fanout lint fmt recover-smoke dist-smoke

all: build lint test

build:
	$(GO) build ./...

# The examples are the documented face of the pipeline API; building
# them separately (mirrored by a dedicated CI step) guarantees the
# README/examples surface can never drift from the code.
build-examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The crash-recovery drill (mirrored by CI's recovery-smoke job): kill
# the operator at every armed faultpoint under the race detector,
# restore from the latest checkpoint, replay, and verify exactness.
# The transport chaos case rides the same matrix: SQUALL_SMOKE_FLAKY
# doubles as the link fault rate for dropped/duplicated/torn frames.
recover-smoke:
	$(GO) test -race -count=1 ./internal/faultpoint/ ./internal/storage/ ./internal/transport/ -run 'Recovery|Corrupt|Leak|Faultpoint|Backend|Chaos'

# The distributed smoke drill (mirrored by CI's distributed-smoke
# job): two real joinworker processes, a ~120k-tuple skewed equi-join
# with forced migration over the TCP links, exact pair-count agreement
# with the single-process run, and clean process teardown.
dist-smoke:
	GO=$(GO) ./scripts/distsmoke.sh

# Full benchmark suite; CI runs the 1x smoke variant of the same set.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Benchmarks versus the committed BENCH_*.json trajectory, via the
# same script CI's bench-smoke job runs (scripts/benchdelta.sh), so
# the benchmark set and gating flags cannot drift between local and CI
# runs. Exits non-zero on a >25% regression; BENCHDELTA_FLAGS passes
# extra cmd/benchdelta flags (e.g. -minscale 2.5, -tolerance -1).
bench-delta:
	GO=$(GO) ./scripts/benchdelta.sh $(BENCHDELTA_FLAGS)

# Committed pprof recipe for the next hot-path hunt: run one evaluation
# query under the CPU profiler and print the top consumers. Tune -sf /
# -zipf for longer or more skewed runs.
profile:
	$(GO) run ./cmd/joinrun -query EQ5 -op dynamic -j 16 -sf 0.05 -zipf Z2 -cpuprofile cpu.pprof
	$(GO) tool pprof -top -nodecount=20 cpu.pprof

# Profile the emit plane: the same skewed query with sink invocation
# moved onto dedicated emit workers (-emitworkers 0 resolves to
# GOMAXPROCS), so the probe->materialize->emit fanout path dominates
# the profile instead of the inline sink.
profile-fanout:
	$(GO) run ./cmd/joinrun -query EQ5 -op dynamic -j 16 -sf 0.05 -zipf Z2 -emitworkers 0 -cpuprofile fanout.pprof
	$(GO) tool pprof -top -nodecount=20 fanout.pprof

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

fmt:
	gofmt -w .
