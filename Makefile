# Targets mirror the CI jobs in .github/workflows/ci.yml so local and
# CI invocations are identical.

GO ?= go

.PHONY: all build test race bench bench-delta lint fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite; CI runs the 1x smoke variant of the same set.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Ingest ns/tuple versus the committed BENCH_*.json trajectory
# (informational; mirrors the CI bench-smoke delta step). The sparse
# and high-fanout benchmarks need different iteration budgets — fanout
# runs a fixed 100k-tuple stream per iteration — so they run separately
# and pipe into one benchdelta invocation.
bench-delta:
	( $(GO) test -bench '^BenchmarkOperatorIngest$$' -benchtime=20000x -run '^$$' . ; \
	  $(GO) test -bench '^BenchmarkOperatorIngestFanout$$' -benchtime=2x -run '^$$' . ) \
	| $(GO) run ./cmd/benchdelta

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

fmt:
	gofmt -w .
